//! # nn-crypto — cryptographic substrate for the neutralizer
//!
//! This crate implements, from scratch, every cryptographic primitive the
//! paper *A Technical Approach to Net Neutrality* (HotNets 2006) relies on:
//!
//! * [`biguint`] / [`modexp`] / [`prime`] — multiprecision arithmetic,
//!   Montgomery exponentiation and prime generation sized for 512-bit
//!   one-time RSA keys (§3.2) and 1024-bit end-to-end keys.
//! * [`rsa`] — RSA with public exponent 3, so the neutralizer's per-packet
//!   work is "as few as two multiplications" (§3.2), with CRT decryption
//!   on the source side.
//! * [`aes`] / [`cmac`] / [`ctr`] — "128-bit AES for both hashing and
//!   encryption/decryption" (§4): the block cipher, the RFC 4493 keyed
//!   hash, and the stream mode.
//! * [`kdf`] — the stateless derivation `Ks = hash(KM, nonce, srcIP)`.
//! * [`sealed`] — the 16-byte encrypted-address block carried in the shim
//!   header, with redundancy so wrong keys are detected.
//! * [`e2e`] — the "IPsec black box" of §3.1 as a concrete hybrid channel.
//! * [`factor`] — Pollard rho + cost models for the E6 security-window
//!   experiment.
//!
//! Nothing here is intended as production cryptography — the repository
//! reproduces a 2006 research design, including its deliberately short
//! keys — but all primitives are test-vector-validated (FIPS-197,
//! RFC 4493, NIST SP 800-38A) and panic-free on attacker-controlled input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod biguint;
pub mod cmac;
pub mod ctr;
pub mod e2e;
pub mod error;
pub mod factor;
pub mod kdf;
pub mod modexp;
pub mod prime;
pub mod rsa;
pub mod sealed;

pub use aes::Aes128;
pub use biguint::BigUint;
pub use cmac::{cmac, Cmac};
pub use ctr::AesCtr;
pub use e2e::{E2eEnvelope, E2eRecord, E2eSession};
pub use error::{CryptoError, Result};
pub use kdf::MasterKey;
pub use rsa::{generate_keypair, keygen_rng, RsaKeypair, RsaPrivateKey, RsaPublicKey};
pub use sealed::{open_addr, seal_addr, AddrSealer};
