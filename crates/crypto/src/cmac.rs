//! AES-CMAC (RFC 4493).
//!
//! The paper's neutralizer derives the per-source symmetric key as
//! `Ks = hash(KM, nonce, srcIP)` (§3.2) using "128-bit AES for both hashing
//! and encryption" (§4). CMAC is exactly that: a keyed hash built from the
//! AES block cipher, so one CMAC invocation costs a couple of AES block
//! operations — the cost model the evaluation depends on.

use crate::aes::Aes128;

/// Doubling in GF(2^128) with the CMAC polynomial constant 0x87.
fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

/// AES-CMAC context with precomputed subkeys.
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl core::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Cmac(<subkeys>)")
    }
}

impl Cmac {
    /// Derives the CMAC subkeys from an AES-128 key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt_copy(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the 128-bit tag over `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; 16] {
        let n_blocks = msg.len().div_ceil(16).max(1);
        let complete_last = !msg.is_empty() && msg.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        // All blocks except the last.
        for i in 0..n_blocks - 1 {
            for j in 0..16 {
                x[j] ^= msg[i * 16 + j];
            }
            x = self.cipher.encrypt_copy(&x);
        }
        // Last block, masked with K1 (complete) or padded and masked with K2.
        let mut last = [0u8; 16];
        if complete_last {
            last.copy_from_slice(&msg[(n_blocks - 1) * 16..]);
            for (l, k) in last.iter_mut().zip(self.k1.iter()) {
                *l ^= k;
            }
        } else {
            let tail = &msg[(n_blocks - 1) * 16..];
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(self.k2.iter()) {
                *l ^= k;
            }
        }
        for j in 0..16 {
            x[j] ^= last[j];
        }
        self.cipher.encrypt_copy(&x)
    }

    /// Constant-shape tag verification.
    pub fn verify(&self, msg: &[u8], tag: &[u8; 16]) -> bool {
        let expect = self.tag(msg);
        let mut diff = 0u8;
        for i in 0..16 {
            diff |= expect[i] ^ tag[i];
        }
        diff == 0
    }
}

/// One-shot convenience: `CMAC(key, msg)`.
pub fn cmac(key: &[u8; 16], msg: &[u8]) -> [u8; 16] {
    Cmac::new(key).tag(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 16] {
        hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap()
    }

    fn rfc_msg() -> Vec<u8> {
        hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
    }

    #[test]
    fn rfc4493_subkeys() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(c.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(c.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(c.tag(b"").to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()[..16]).to_vec(),
            hex("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()[..40]).to_vec(),
            hex("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()).to_vec(),
            hex("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let c = Cmac::new(&[7u8; 16]);
        let msg = b"the neutralizer blurs packets";
        let tag = c.tag(msg);
        assert!(c.verify(msg, &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!c.verify(msg, &bad));
        assert!(!c.verify(b"different message", &tag));
    }

    #[test]
    fn length_extension_blocked_by_subkeys() {
        // Messages that differ only by zero-padding must not collide.
        let c = Cmac::new(&[9u8; 16]);
        let a = c.tag(&[1, 2, 3]);
        let b = c.tag(&[1, 2, 3, 0]);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn prop_distinct_messages_distinct_tags(
            key in any::<[u8;16]>(),
            m1 in proptest::collection::vec(any::<u8>(), 0..64),
            m2 in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assume!(m1 != m2);
            let c = Cmac::new(&key);
            prop_assert_ne!(c.tag(&m1), c.tag(&m2));
        }

        #[test]
        fn prop_tag_deterministic(key in any::<[u8;16]>(), m in proptest::collection::vec(any::<u8>(), 0..96)) {
            let c = Cmac::new(&key);
            prop_assert_eq!(c.tag(&m), c.tag(&m));
            prop_assert!(c.verify(&m, &c.tag(&m)));
        }
    }
}
