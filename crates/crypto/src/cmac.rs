//! AES-CMAC (RFC 4493).
//!
//! The paper's neutralizer derives the per-source symmetric key as
//! `Ks = hash(KM, nonce, srcIP)` (§3.2) using "128-bit AES for both hashing
//! and encryption" (§4). CMAC is exactly that: a keyed hash built from the
//! AES block cipher, so one CMAC invocation costs a couple of AES block
//! operations — the cost model the evaluation depends on.

use crate::aes::Aes128;

/// Doubling in GF(2^128) with the CMAC polynomial constant 0x87.
fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

/// AES-CMAC context with precomputed subkeys.
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl core::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Cmac(<subkeys>)")
    }
}

impl Cmac {
    /// Derives the CMAC subkeys from an AES-128 key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt_copy(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the 128-bit tag over `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; 16] {
        self.tag_parts(&[msg])
    }

    /// Computes the tag over the logical concatenation of `parts`
    /// without materializing it. `tag_parts(&[a, b])` equals
    /// `tag(a ++ b)` for any split, which lets callers (record
    /// seal/open, key derivation) tag `header || payload` messages
    /// allocation-free.
    pub fn tag_parts(&self, parts: &[&[u8]]) -> [u8; 16] {
        let mut x = [0u8; 16];
        let mut buf = [0u8; 16];
        // Bytes buffered in `buf`. A full buffer is held back, not yet
        // encrypted: CMAC treats the final block specially, so a block
        // may only be absorbed once more data proves it is not last.
        let mut fill = 0usize;
        for mut part in parts.iter().copied() {
            while !part.is_empty() {
                if fill == 16 {
                    xor_block(&mut x, &buf);
                    x = self.cipher.encrypt_copy(&x);
                    fill = 0;
                }
                let take = (16 - fill).min(part.len());
                buf[fill..fill + take].copy_from_slice(&part[..take]);
                fill += take;
                part = &part[take..];
            }
        }
        // Last block, masked with K1 (complete) or padded and masked with K2.
        let mut last = [0u8; 16];
        if fill == 16 {
            last = buf;
            xor_block(&mut last, &self.k1);
        } else {
            last[..fill].copy_from_slice(&buf[..fill]);
            last[fill] = 0x80;
            xor_block(&mut last, &self.k2);
        }
        xor_block(&mut x, &last);
        self.cipher.encrypt_copy(&x)
    }

    /// Constant-shape tag verification.
    pub fn verify(&self, msg: &[u8], tag: &[u8; 16]) -> bool {
        self.verify_parts(&[msg], tag)
    }

    /// [`verify`](Self::verify) over a logical concatenation of parts.
    pub fn verify_parts(&self, parts: &[&[u8]], tag: &[u8; 16]) -> bool {
        let expect = self.tag_parts(parts);
        let mut diff = 0u8;
        for i in 0..16 {
            diff |= expect[i] ^ tag[i];
        }
        diff == 0
    }
}

#[inline]
fn xor_block(dst: &mut [u8; 16], src: &[u8; 16]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// One-shot convenience: `CMAC(key, msg)`.
pub fn cmac(key: &[u8; 16], msg: &[u8]) -> [u8; 16] {
    Cmac::new(key).tag(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 16] {
        hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap()
    }

    fn rfc_msg() -> Vec<u8> {
        hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
    }

    #[test]
    fn rfc4493_subkeys() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(c.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(c.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(c.tag(b"").to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()[..16]).to_vec(),
            hex("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()[..40]).to_vec(),
            hex("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let c = Cmac::new(&rfc_key());
        assert_eq!(
            c.tag(&rfc_msg()).to_vec(),
            hex("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let c = Cmac::new(&[7u8; 16]);
        let msg = b"the neutralizer blurs packets";
        let tag = c.tag(msg);
        assert!(c.verify(msg, &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!c.verify(msg, &bad));
        assert!(!c.verify(b"different message", &tag));
    }

    #[test]
    fn length_extension_blocked_by_subkeys() {
        // Messages that differ only by zero-padding must not collide.
        let c = Cmac::new(&[9u8; 16]);
        let a = c.tag(&[1, 2, 3]);
        let b = c.tag(&[1, 2, 3, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn tag_parts_matches_tag_at_every_split() {
        let c = Cmac::new(&rfc_key());
        let msg = rfc_msg();
        for cut in 0..=msg.len() {
            let (a, b) = msg.split_at(cut);
            assert_eq!(c.tag_parts(&[a, b]), c.tag(&msg), "cut={cut}");
        }
        assert_eq!(c.tag_parts(&[]), c.tag(b""));
        assert_eq!(c.tag_parts(&[b"", &msg, b""]), c.tag(&msg));
    }

    #[test]
    fn verify_parts_roundtrip() {
        let c = Cmac::new(&[4u8; 16]);
        let tag = c.tag_parts(&[b"head", b"tail"]);
        assert!(c.verify_parts(&[b"head", b"tail"], &tag));
        assert!(c.verify(b"headtail", &tag));
        assert!(!c.verify_parts(&[b"head", b"tale"], &tag));
    }

    proptest! {
        #[test]
        fn prop_tag_parts_matches_concat(
            key in any::<[u8;16]>(),
            parts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..5),
        ) {
            let c = Cmac::new(&key);
            let concat: Vec<u8> = parts.iter().flatten().copied().collect();
            let views: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            prop_assert_eq!(c.tag_parts(&views), c.tag(&concat));
        }

        #[test]
        fn prop_cached_context_matches_fresh(
            key in any::<[u8;16]>(),
            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..6),
        ) {
            // A long-lived context (cached subkeys) must tag exactly like
            // a context derived fresh for every message.
            let cached = Cmac::new(&key);
            for m in &msgs {
                prop_assert_eq!(cached.tag(m), cmac(&key, m));
            }
        }

        #[test]
        fn prop_distinct_messages_distinct_tags(
            key in any::<[u8;16]>(),
            m1 in proptest::collection::vec(any::<u8>(), 0..64),
            m2 in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assume!(m1 != m2);
            let c = Cmac::new(&key);
            prop_assert_ne!(c.tag(&m1), c.tag(&m2));
        }

        #[test]
        fn prop_tag_deterministic(key in any::<[u8;16]>(), m in proptest::collection::vec(any::<u8>(), 0..96)) {
            let c = Cmac::new(&key);
            prop_assert_eq!(c.tag(&m), c.tag(&m));
            prop_assert!(c.verify(&m, &c.tag(&m)));
        }
    }
}
