//! Key derivation for the stateless neutralizer.
//!
//! §3.2: `Ks = hash(KM, nonce, srcIP)`. Because the neutralizer can
//! recompute `Ks` from fields carried in every packet header (nonce in
//! clear, source address in the IP header), it keeps **no per-flow state**
//! — any neutralizer in the domain holding `KM` can process any packet,
//! preserving IP's stateless, fault-tolerant routing. This module is the
//! concrete realization of that equation.

use crate::cmac::Cmac;

/// Domain-separation label baked into every key derivation, so the same
/// master key can never collide with other CMAC uses.
const DERIVE_LABEL: &[u8; 4] = b"NNKS";

/// Label for dynamic-address derivation (QoS sessions, §3.4).
const DYNADDR_LABEL: &[u8; 4] = b"NNDA";

/// A neutralizer master key `KM` with a precomputed CMAC schedule.
#[derive(Clone)]
pub struct MasterKey {
    mac: Cmac,
}

impl core::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("MasterKey(<secret>)")
    }
}

impl MasterKey {
    /// Wraps 16 bytes of keying material.
    pub fn new(key: [u8; 16]) -> Self {
        MasterKey {
            mac: Cmac::new(&key),
        }
    }

    /// Derives the per-source symmetric key: `Ks = CMAC(KM, label ‖ nonce ‖ srcIP)`.
    ///
    /// `src_ip` is the IPv4 address in big-endian u32 form (the untrusted
    /// value straight from the packet header — derivation itself cannot
    /// fail, a wrong source simply yields a key that decrypts garbage).
    pub fn derive_ks(&self, nonce: u64, src_ip: u32) -> [u8; 16] {
        let mut msg = [0u8; 16];
        msg[..4].copy_from_slice(DERIVE_LABEL);
        msg[4..12].copy_from_slice(&nonce.to_be_bytes());
        msg[12..16].copy_from_slice(&src_ip.to_be_bytes());
        self.mac.tag(&msg)
    }

    /// Derives a dynamic address suffix for QoS flows (§3.4): stable for a
    /// (customer, flow-id) pair under one master key, unlinkable to the
    /// customer without `KM`.
    pub fn derive_dynamic_addr(&self, customer_ip: u32, flow_id: u64) -> u32 {
        let mut msg = [0u8; 16];
        msg[..4].copy_from_slice(DYNADDR_LABEL);
        msg[4..8].copy_from_slice(&customer_ip.to_be_bytes());
        msg[8..16].copy_from_slice(&flow_id.to_be_bytes());
        let tag = self.mac.tag(&msg);
        u32::from_be_bytes([tag[0], tag[1], tag[2], tag[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derivation_is_deterministic() {
        let km = MasterKey::new([0x11; 16]);
        assert_eq!(km.derive_ks(7, 0x0a000001), km.derive_ks(7, 0x0a000001));
    }

    #[test]
    fn nonce_and_source_both_bind() {
        let km = MasterKey::new([0x22; 16]);
        let base = km.derive_ks(1, 100);
        assert_ne!(base, km.derive_ks(2, 100), "nonce must change the key");
        assert_ne!(base, km.derive_ks(1, 101), "source must change the key");
    }

    #[test]
    fn master_keys_are_independent() {
        let a = MasterKey::new([0x01; 16]);
        let b = MasterKey::new([0x02; 16]);
        assert_ne!(a.derive_ks(5, 5), b.derive_ks(5, 5));
    }

    #[test]
    fn dynamic_addr_stable_and_flow_scoped() {
        let km = MasterKey::new([0x33; 16]);
        let a1 = km.derive_dynamic_addr(0xc0a80001, 1);
        assert_eq!(a1, km.derive_dynamic_addr(0xc0a80001, 1));
        assert_ne!(a1, km.derive_dynamic_addr(0xc0a80001, 2));
        assert_ne!(a1, km.derive_dynamic_addr(0xc0a80002, 1));
    }

    #[test]
    fn domain_separation_between_labels() {
        // A Ks derivation and a dynamic-address derivation with aligned
        // inputs must not be related.
        let km = MasterKey::new([0x44; 16]);
        let ks = km.derive_ks(0, 0);
        let da = km.derive_dynamic_addr(0, 0);
        assert_ne!(u32::from_be_bytes([ks[0], ks[1], ks[2], ks[3]]), da);
    }

    proptest! {
        #[test]
        fn prop_distinct_inputs_distinct_keys(
            n1 in any::<u64>(), s1 in any::<u32>(),
            n2 in any::<u64>(), s2 in any::<u32>(),
        ) {
            prop_assume!((n1, s1) != (n2, s2));
            let km = MasterKey::new([0x55; 16]);
            prop_assert_ne!(km.derive_ks(n1, s1), km.derive_ks(n2, s2));
        }
    }
}
