//! RSA with the paper's parameter choices.
//!
//! §3.2: sources mint a *short, one-time* 512-bit RSA key per connection and
//! send it to the neutralizer; the neutralizer performs the cheap
//! *encryption* (e = 3: two modular multiplications) while the source pays
//! for the expensive decryption. End-to-end protection uses ordinary
//! 1024-bit keys. Decryption uses the CRT.
//!
//! Padding is PKCS#1-v1.5-shaped (`00 02 <random nonzero> 00 <msg>`): enough
//! structure for the simulator to detect corruption, not a claim of
//! contemporary cryptographic strength — the paper itself argues the
//! 512-bit key only needs to survive two round-trip times.

use crate::biguint::BigUint;
use crate::error::{CryptoError, Result};
use crate::modexp::Montgomery;
use crate::prime::gen_prime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed public exponent. The paper calls out e = 3 so that an RSA
/// encryption "may involve as few as two multiplications".
pub const PUBLIC_EXPONENT: u64 = 3;

/// Minimum random padding bytes in an encryption block.
const MIN_PAD: usize = 8;

/// RSA public key (modulus + implicit exponent 3).
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    /// Modulus size in bytes; every ciphertext is exactly this long.
    k: usize,
    /// Montgomery context for `n`, precomputed once per key so the
    /// per-packet encrypt path skips the R² setup division.
    mont: Montgomery,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The Montgomery context is derived from (n, k); ignore it.
        self.n == other.n && self.k == other.k
    }
}

impl Eq for RsaPublicKey {}

impl core::fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RsaPublicKey({} bits)", self.k * 8)
    }
}

/// RSA private key with CRT acceleration parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    /// Montgomery contexts for the CRT primes, precomputed once per key.
    mp: Montgomery,
    mq: Montgomery,
}

impl core::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RsaPrivateKey({} bits)", self.public.k * 8)
    }
}

/// A freshly generated keypair.
#[derive(Clone, Debug)]
pub struct RsaKeypair {
    /// The shareable encryption key.
    pub public: RsaPublicKey,
    /// The decryption key, held by the key's minter only.
    pub private: RsaPrivateKey,
}

/// Forks a dedicated keygen RNG off `parent` with exactly one draw.
///
/// Prime search consumes a data-dependent number of random values — how
/// many candidates it rejects depends on where the sieve window lands —
/// so feeding `generate_keypair` a simulation RNG directly would advance
/// that stream by an amount that changes whenever keygen internals
/// change, perturbing every downstream draw. Forking through a single
/// `u64` seed pins the parent's advance to one draw regardless of
/// rejection count, keeping simulation traces (and goldens) invariant to
/// prime-search implementation details.
pub fn keygen_rng<R: Rng + ?Sized>(parent: &mut R) -> StdRng {
    StdRng::seed_from_u64(parent.gen())
}

/// Generates an RSA keypair with modulus of exactly `bits` bits (e = 3).
///
/// `bits = 512` reproduces the paper's one-time short keys; `bits = 1024`
/// the end-to-end keys. Primes are constrained so gcd(e, φ(n)) = 1.
pub fn generate_keypair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> RsaKeypair {
    assert!(
        bits >= 128 && bits.is_multiple_of(2),
        "modulus must be an even bit count of at least 128"
    );
    let e = BigUint::from_u64(PUBLIC_EXPONENT);
    loop {
        let p = gen_prime(rng, bits / 2, true, Some(&e));
        let q = gen_prime(rng, bits / 2, true, Some(&e));
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        debug_assert_eq!(n.bit_len(), bits, "two-top-bit primes give full-size n");
        let one = BigUint::one();
        let pm1 = p.sub(&one);
        let qm1 = q.sub(&one);
        let phi = pm1.mul(&qm1);
        let d = match e.mod_inverse(&phi) {
            Some(d) => d,
            None => continue, // cannot happen given the coprime constraint
        };
        let dp = d.rem(&pm1);
        let dq = d.rem(&qm1);
        let qinv = match q.mod_inverse(&p) {
            Some(v) => v,
            None => continue, // p == q was excluded, so this cannot happen
        };
        let mont = Montgomery::new(&n);
        let public = RsaPublicKey {
            n,
            k: bits / 8,
            mont,
        };
        let mp = Montgomery::new(&p);
        let mq = Montgomery::new(&q);
        return RsaKeypair {
            private: RsaPrivateKey {
                public: public.clone(),
                p,
                q,
                dp,
                dq,
                qinv,
                mp,
                mq,
            },
            public,
        };
    }
}

impl RsaPublicKey {
    /// Modulus size in bytes (= ciphertext length).
    pub fn modulus_len(&self) -> usize {
        self.k
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.k * 8
    }

    /// Largest plaintext accepted by [`encrypt`](Self::encrypt).
    pub fn max_plaintext_len(&self) -> usize {
        self.k.saturating_sub(3 + MIN_PAD)
    }

    /// Raw RSA: `m^3 mod n`. `m` must be below the modulus.
    pub fn encrypt_raw(&self, m: &BigUint) -> Result<BigUint> {
        if m >= &self.n {
            return Err(CryptoError::MessageTooLong);
        }
        // e = 3: square then multiply — the two multiplications of §3.2.
        Ok(self.mont.pow(m, &BigUint::from_u64(PUBLIC_EXPONENT)))
    }

    /// Pads and encrypts `msg`; output is exactly `modulus_len()` bytes.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, msg: &[u8]) -> Result<Vec<u8>> {
        if msg.len() > self.max_plaintext_len() {
            return Err(CryptoError::MessageTooLong);
        }
        // 00 02 PS 00 MSG with PS random non-zero.
        let pad_len = self.k - 3 - msg.len();
        let mut block = Vec::with_capacity(self.k);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..pad_len {
            loop {
                let b: u8 = rng.gen();
                if b != 0 {
                    block.push(b);
                    break;
                }
            }
        }
        block.push(0x00);
        block.extend_from_slice(msg);
        let m = BigUint::from_bytes_be(&block);
        let c = self.encrypt_raw(&m)?;
        c.to_bytes_be_padded(self.k).ok_or(CryptoError::BadLength)
    }

    /// Serializes the public key for the wire: 2-byte length then modulus.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.k);
        out.extend_from_slice(&(self.k as u16).to_be_bytes());
        out.extend_from_slice(&self.n.to_bytes_be_padded(self.k).expect("n fits k"));
        out
    }

    /// Parses a wire-format public key; rejects structurally absurd keys.
    pub fn from_wire(bytes: &[u8]) -> Result<(Self, usize)> {
        if bytes.len() < 2 {
            return Err(CryptoError::BadKey);
        }
        let k = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if !(16..=1024).contains(&k) || bytes.len() < 2 + k {
            return Err(CryptoError::BadKey);
        }
        let n = BigUint::from_bytes_be(&bytes[2..2 + k]);
        if n.bit_len() != k * 8 || n.is_even() {
            return Err(CryptoError::BadKey);
        }
        let mont = Montgomery::new(&n);
        Ok((RsaPublicKey { n, k, mont }, 2 + k))
    }

    /// The modulus, for experiments that factor short keys (E6).
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }
}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw CRT decryption: `c^d mod n` via the two prime-sized exponents.
    pub fn decrypt_raw(&self, c: &BigUint) -> Result<BigUint> {
        if c >= &self.public.n {
            return Err(CryptoError::BadPadding);
        }
        let m1 = self.mp.pow(c, &self.dp);
        let m2 = self.mq.pow(c, &self.dq);
        // h = qinv * (m1 - m2) mod p, lifting m2 into Z_p first.
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub(&m2_mod_p)
        } else {
            m1.add(&self.p).sub(&m2_mod_p)
        };
        let h = self.mp.mul_mod(&self.qinv, &diff);
        Ok(m2.add(&h.mul(&self.q)))
    }

    /// Decrypts and strips padding.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.len() != self.public.k {
            return Err(CryptoError::BadLength);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let m = self.decrypt_raw(&c)?;
        let block = m
            .to_bytes_be_padded(self.public.k)
            .ok_or(CryptoError::BadPadding)?;
        if block[0] != 0x00 || block[1] != 0x02 {
            return Err(CryptoError::BadPadding);
        }
        // Find the 00 separator after at least MIN_PAD padding bytes.
        let sep = block[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::BadPadding)?;
        if sep < MIN_PAD {
            return Err(CryptoError::BadPadding);
        }
        Ok(block[2 + sep + 1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize, seed: u64) -> RsaKeypair {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_keypair(&mut rng, bits)
    }

    #[test]
    fn roundtrip_256() {
        let kp = keypair(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let msg = b"hello neutralizer";
        let ct = kp.public.encrypt(&mut rng, msg).unwrap();
        assert_eq!(ct.len(), 32);
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn roundtrip_512_paper_size() {
        let kp = keypair(512, 3);
        assert_eq!(kp.public.modulus_bits(), 512);
        let mut rng = StdRng::seed_from_u64(4);
        // nonce (8) + symmetric key (16): the §3.2 key-setup payload.
        let msg = [0xabu8; 24];
        let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
        assert_eq!(ct.len(), 64);
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn empty_message_roundtrips() {
        let kp = keypair(256, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let ct = kp.public.encrypt(&mut rng, b"").unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), b"");
    }

    #[test]
    fn oversized_message_rejected() {
        let kp = keypair(256, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let too_long = vec![0u8; kp.public.max_plaintext_len() + 1];
        assert_eq!(
            kp.public.encrypt(&mut rng, &too_long),
            Err(CryptoError::MessageTooLong)
        );
        let exactly = vec![0x55u8; kp.public.max_plaintext_len()];
        let ct = kp.public.encrypt(&mut rng, &exactly).unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), exactly);
    }

    #[test]
    fn corrupted_ciphertext_detected() {
        let kp = keypair(256, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut ct = kp.public.encrypt(&mut rng, b"payload").unwrap();
        ct[5] ^= 0xff;
        // Either the padding breaks or the message changes; padding failure
        // is overwhelmingly likely and must not panic.
        match kp.private.decrypt(&ct) {
            Err(CryptoError::BadPadding) => {}
            Ok(m) => assert_ne!(m, b"payload"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn wrong_length_ciphertext_rejected() {
        let kp = keypair(256, 11);
        assert_eq!(kp.private.decrypt(&[0u8; 31]), Err(CryptoError::BadLength));
        assert_eq!(kp.private.decrypt(&[0u8; 33]), Err(CryptoError::BadLength));
    }

    #[test]
    fn wire_roundtrip_and_rejects() {
        let kp = keypair(512, 12);
        let wire = kp.public.to_wire();
        let (parsed, used) = RsaPublicKey::from_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed, kp.public);

        assert_eq!(RsaPublicKey::from_wire(&[]), Err(CryptoError::BadKey));
        assert_eq!(RsaPublicKey::from_wire(&[0, 64]), Err(CryptoError::BadKey));
        // Even modulus rejected.
        let mut bad = wire.clone();
        *bad.last_mut().unwrap() &= 0xfe;
        assert_eq!(RsaPublicKey::from_wire(&bad), Err(CryptoError::BadKey));
    }

    #[test]
    fn raw_encrypt_rejects_large_message() {
        let kp = keypair(256, 13);
        assert_eq!(
            kp.public.encrypt_raw(kp.public.modulus()),
            Err(CryptoError::MessageTooLong)
        );
    }

    #[test]
    fn crt_decrypt_matches_plain_exponent() {
        // Verify CRT against straightforward c^d mod n on a small key.
        let mut rng = StdRng::seed_from_u64(14);
        let kp = generate_keypair(&mut rng, 128);
        let m = BigUint::from_u64(0xdead_beef_cafe);
        let c = kp.public.encrypt_raw(&m).unwrap();
        let via_crt = kp.private.decrypt_raw(&c).unwrap();
        assert_eq!(via_crt, m);
    }

    #[test]
    fn keypair_soundness_across_sizes() {
        for (bits, seed) in [(128usize, 21u64), (256, 22), (320, 23), (512, 24)] {
            let kp = keypair(bits, seed);
            // Top-two-bit forcing in both primes gives a full-width modulus.
            assert_eq!(kp.public.modulus().bit_len(), bits, "bits={bits}");
            assert_eq!(kp.public.modulus_bits(), bits);
            assert_eq!(kp.private.p.bit_len(), bits / 2);
            assert_eq!(kp.private.q.bit_len(), bits / 2);
            assert_ne!(kp.private.p, kp.private.q, "bits={bits}");
            // Encrypt → CRT-decrypt round-trips (128-bit keys only fit a
            // few plaintext bytes; clamp to what the modulus allows).
            let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
            let msg = vec![0x5au8; kp.public.max_plaintext_len().min(9)];
            let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
            assert_eq!(kp.private.decrypt(&ct).unwrap(), msg, "bits={bits}");
        }
    }

    #[test]
    fn fixed_seed_keygen_vector_pinned() {
        // Pinned vector: any future refactor that claims bit-identical
        // keygen (same RNG consumption, same candidate walk) must keep
        // this modulus; an intentional change regenerates it.
        let kp = keypair(512, 0xA11CE);
        let n_hex: String = kp
            .public
            .modulus()
            .to_bytes_be()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(
            n_hex,
            "b43c31a76e9ac18dbe3bd3354fea4ca888cbc2f597d3f9c1601e2250f2661d4d\
             425fcc598b722d80783292b05c11db7795b0548ca7e5a7235620aed9960cad15",
        );
    }

    /// Counts draws so tests can observe RNG stream advancement.
    struct CountingRng {
        inner: StdRng,
        draws: u64,
    }

    impl rand::RngCore for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn keygen_rng_pins_parent_advance_to_one_draw() {
        // Different key sizes reject different numbers of candidates —
        // verify that variance exists, then verify none of it reaches
        // the parent stream: both parents advance exactly one draw and
        // stay in lockstep afterwards.
        let mut parent_a = CountingRng {
            inner: StdRng::seed_from_u64(77),
            draws: 0,
        };
        let mut parent_b = CountingRng {
            inner: StdRng::seed_from_u64(77),
            draws: 0,
        };
        let mut sub_a = keygen_rng(&mut parent_a);
        let mut sub_b = keygen_rng(&mut parent_b);
        assert_eq!(parent_a.draws, 1);
        assert_eq!(parent_b.draws, 1);

        let mut count_a = CountingRng {
            inner: sub_a.clone(),
            draws: 0,
        };
        let mut count_b = CountingRng {
            inner: sub_b.clone(),
            draws: 0,
        };
        let _ = generate_keypair(&mut count_a, 320);
        let _ = generate_keypair(&mut count_b, 512);
        assert_ne!(
            count_a.draws, count_b.draws,
            "key sizes should consume different draw counts for the \
             lockstep assertion below to mean anything"
        );
        let _ = generate_keypair(&mut sub_a, 320);
        let _ = generate_keypair(&mut sub_b, 512);

        assert_eq!(parent_a.draws, 1, "keygen must not touch the parent");
        assert_eq!(parent_b.draws, 1);
        for _ in 0..64 {
            assert_eq!(
                parent_a.inner.gen::<u64>(),
                parent_b.inner.gen::<u64>(),
                "parent streams must stay in lockstep regardless of \
                 keygen rejection count"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_roundtrip_random_messages(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..20)) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Key generation is the expensive part; a small modulus keeps
            // the property test fast while covering the same code paths.
            let kp = generate_keypair(&mut rng, 256);
            let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
            prop_assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
        }
    }
}
