//! AES-CTR stream encryption.
//!
//! Used for payload confidentiality in the end-to-end channel (the paper's
//! "IPsec as a black box", §3.1) and wherever more than one block must be
//! encrypted under a session key. The counter block layout is
//! `nonce (8 bytes, big-endian) || block counter (8 bytes, big-endian)`.

use crate::aes::Aes128;

/// CTR-mode wrapper around AES-128.
#[derive(Clone, Debug)]
pub struct AesCtr {
    cipher: Aes128,
}

impl AesCtr {
    /// Builds a CTR context from a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        AesCtr {
            cipher: Aes128::new(key),
        }
    }

    /// Encrypts the raw counter block (exposed for NIST vector tests and
    /// for single-block constructions).
    pub fn keystream_block_raw(&self, counter_block: &[u8; 16]) -> [u8; 16] {
        self.cipher.encrypt_copy(counter_block)
    }

    fn counter_block(nonce: u64, counter: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&nonce.to_be_bytes());
        block[8..].copy_from_slice(&counter.to_be_bytes());
        block
    }

    /// XORs the keystream for (`nonce`, starting at block `first_block`)
    /// into `data`. Encrypt and decrypt are the same operation.
    ///
    /// Keystream blocks are generated eight at a time through
    /// [`Aes128::encrypt_blocks`], amortizing table loads across the
    /// batch; the bytes produced are identical to block-at-a-time CTR.
    pub fn apply_keystream_at(&self, nonce: u64, first_block: u64, data: &mut [u8]) {
        const LANES: usize = 8;
        let mut counter = first_block;
        let mut chunks = data.chunks_exact_mut(16 * LANES);
        for chunk in &mut chunks {
            let mut ks: [[u8; 16]; LANES] = core::array::from_fn(|i| {
                Self::counter_block(nonce, counter.wrapping_add(i as u64))
            });
            self.cipher.encrypt_blocks(&mut ks);
            for (seg, k) in chunk.chunks_exact_mut(16).zip(ks.iter()) {
                // Whole-block XOR as one 128-bit op.
                let d = u128::from_ne_bytes(seg.try_into().unwrap()) ^ u128::from_ne_bytes(*k);
                seg.copy_from_slice(&d.to_ne_bytes());
            }
            counter = counter.wrapping_add(LANES as u64);
        }
        for chunk in chunks.into_remainder().chunks_mut(16) {
            let ks = self.keystream_block_raw(&Self::counter_block(nonce, counter));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// XORs the keystream for `nonce` (starting at block 0) into `data`.
    pub fn apply_keystream(&self, nonce: u64, data: &mut [u8]) {
        self.apply_keystream_at(nonce, 0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_ctr_block1() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let ctr_block: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let plain = hex("6bc1bee22e409f96e93d7e117393172a");
        let expect = hex("874d6191b620e3261bef6864990db6ce");
        let ctr = AesCtr::new(&key);
        let ks = ctr.keystream_block_raw(&ctr_block);
        let ct: Vec<u8> = plain.iter().zip(ks.iter()).map(|(p, k)| p ^ k).collect();
        assert_eq!(ct, expect);
    }

    #[test]
    fn roundtrip_unaligned_length() {
        let ctr = AesCtr::new(&[3u8; 16]);
        let mut data = b"seventeen bytes!!".to_vec();
        let orig = data.clone();
        ctr.apply_keystream(42, &mut data);
        assert_ne!(data, orig);
        ctr.apply_keystream(42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_different_streams() {
        let ctr = AesCtr::new(&[5u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr.apply_keystream(1, &mut a);
        ctr.apply_keystream(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn seek_matches_contiguous() {
        // Applying from block 2 must equal the tail of a longer stream.
        let ctr = AesCtr::new(&[9u8; 16]);
        let mut long = vec![0u8; 64];
        ctr.apply_keystream(7, &mut long);
        let mut tail = vec![0u8; 32];
        ctr.apply_keystream_at(7, 2, &mut tail);
        assert_eq!(&long[32..], &tail[..]);
    }

    #[test]
    fn empty_data_is_noop() {
        let ctr = AesCtr::new(&[1u8; 16]);
        let mut data: Vec<u8> = Vec::new();
        ctr.apply_keystream(0, &mut data);
        assert!(data.is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(key in any::<[u8;16]>(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let ctr = AesCtr::new(&key);
            let mut buf = data.clone();
            ctr.apply_keystream(nonce, &mut buf);
            ctr.apply_keystream(nonce, &mut buf);
            prop_assert_eq!(buf, data);
        }
    }
}
