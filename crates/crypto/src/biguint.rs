//! Arbitrary-precision unsigned integers sized for RSA moduli.
//!
//! The neutralizer protocol needs 512-bit one-time RSA keys (§3.2 of the
//! paper) and 1024-bit end-to-end keys, so intermediates reach 2048 bits.
//! Limbs are little-endian `u64`; the representation is always normalized
//! (no trailing zero limbs; zero is the empty limb vector).
//!
//! Division is Knuth's Algorithm D; modular exponentiation uses Montgomery
//! reduction for odd moduli (every modulus in this crate is odd) with a
//! plain multiply-and-reduce fallback for even moduli.

use core::cmp::Ordering;
use core::fmt;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never ends with a zero limb, so every value has a
/// unique representation and equality is limb-vector equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single limb.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Interprets big-endian bytes as an unsigned integer.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True when the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Exposes the little-endian limbs (for Montgomery internals).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    pub(crate) fn into_limbs(self) -> Vec<u64> {
        self.limbs
    }

    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = ai.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Subtraction; panics if `other > self` (internal arithmetic only).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow: subtrahend larger than minuend")
    }

    /// Schoolbook multiplication. Operand sizes in this crate top out around
    /// 32 limbs (2048 bits), where schoolbook is still competitive with
    /// Karatsuba and much simpler to verify.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = div_rem_single(&self.limbs, divisor.limbs[0]);
            return (BigUint::from_limbs(q), BigUint::from_u64(r));
        }
        let (q, r) = div_rem_knuth(&self.limbs, &divisor.limbs);
        (BigUint::from_limbs(q), BigUint::from_limbs(r))
    }

    /// Remainder only.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Remainder by a single word: a top-down limb scan folding each
    /// limb into a 128-bit accumulator — no quotient, no allocation.
    ///
    /// This is what makes windowed prime sieving cheap: one `rem_u64`
    /// per small prime per *window*, instead of a full multi-limb
    /// division per small prime per *candidate*. Panics on `m == 0`.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "BigUint::rem_u64 division by zero");
        let mut rem: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % m as u128;
        }
        rem as u64
    }

    /// Modular multiplication `self * other mod m`.
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self ^ exponent mod modulus`.
    ///
    /// Uses Montgomery reduction when the modulus is odd (all RSA moduli and
    /// primes in this crate), falling back to multiply-and-reduce otherwise.
    pub fn pow_mod(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "pow_mod with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        if modulus.is_even() {
            return self.pow_mod_generic(exponent, modulus);
        }
        crate::modexp::Montgomery::new(modulus).pow(self, exponent)
    }

    fn pow_mod_generic(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let mut base = self.rem(modulus);
        let mut acc = BigUint::one();
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                acc = acc.mul_mod(&base, modulus);
            }
            base = base.mul_mod(&base, modulus);
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse of `self` modulo `m`, if it exists.
    ///
    /// Extended Euclid with an explicit sign on the Bézout coefficient;
    /// works for any modulus `m > 1` (φ(n) is even, so we cannot assume an
    /// odd modulus here).
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Invariants: old_r = old_sign*old_s*a (mod m), r = sign*s*a (mod m).
        let mut old_r = a;
        let mut r = m.clone();
        let mut old_s = BigUint::one();
        let mut s = BigUint::zero();
        let mut old_sign = false; // false = positive
        let mut sign = false;
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            // new_s = old_s - q * s  (in signed arithmetic)
            let qs = q.mul(&s);
            let (new_s, new_sign) = signed_sub((old_s, old_sign), (qs, sign));
            old_r = core::mem::replace(&mut r, rem);
            old_s = core::mem::replace(&mut s, new_s);
            old_sign = core::mem::replace(&mut sign, new_sign);
        }
        if !old_r.is_one() {
            return None; // not coprime
        }
        let inv = old_s.rem(m);
        if old_sign && !inv.is_zero() {
            Some(m.sub(&inv))
        } else {
            Some(inv)
        }
    }

    /// Uniformly random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0, "random_bits needs at least one bit");
        let limbs_needed = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_needed - 1) * 64;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        BigUint::from_limbs(limbs)
    }

    /// Uniformly random integer in `[0, bound)` by rejection sampling.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        let limbs_needed = bits.div_ceil(64);
        let top_bits = bits - (limbs_needed - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
            limbs[limbs_needed - 1] &= mask;
            let candidate = BigUint::from_limbs(limbs);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

/// Signed subtraction on (magnitude, sign) pairs; sign `true` = negative.
fn signed_sub(a: (BigUint, bool), b: (BigUint, bool)) -> (BigUint, bool) {
    let (am, asign) = a;
    let (bm, bsign) = b;
    if asign == bsign {
        // Same sign: magnitude subtraction, sign flips when |b| > |a|.
        if am >= bm {
            (am.sub(&bm), asign)
        } else {
            (bm.sub(&am), !asign)
        }
    } else {
        // a - (-b) = a + b, keeping a's sign.
        (am.add(&bm), asign)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

/// Division by a single limb.
fn div_rem_single(u: &[u64], v: u64) -> (Vec<u64>, u64) {
    let mut q = vec![0u64; u.len()];
    let mut rem = 0u128;
    for i in (0..u.len()).rev() {
        let acc = (rem << 64) | u[i] as u128;
        q[i] = (acc / v as u128) as u64;
        rem = acc % v as u128;
    }
    (q, rem as u64)
}

/// Knuth Algorithm D (TAOCP 4.3.1) over 64-bit limbs, following the
/// structure of Hacker's Delight `divmnu64`. Requires `v.len() >= 2`,
/// `u >= v` (checked by the caller) and a normalized divisor top limb.
fn div_rem_knuth(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = v.len();
    let m = u.len();
    debug_assert!(n >= 2 && m >= n);

    let s = v[n - 1].leading_zeros() as usize;
    let shl = |hi: u64, lo: u64| -> u64 {
        if s == 0 {
            hi
        } else {
            (hi << s) | (lo >> (64 - s))
        }
    };

    // Normalized divisor.
    let mut vn = vec![0u64; n];
    for i in (1..n).rev() {
        vn[i] = shl(v[i], v[i - 1]);
    }
    vn[0] = v[0] << s;

    // Normalized dividend with one extra limb.
    let mut un = vec![0u64; m + 1];
    un[m] = if s == 0 { 0 } else { u[m - 1] >> (64 - s) };
    for i in (1..m).rev() {
        un[i] = shl(u[i], u[i - 1]);
    }
    un[0] = u[0] << s;

    let mut q = vec![0u64; m - n + 1];
    for j in (0..=m - n).rev() {
        // Estimate the quotient digit from the top two dividend limbs.
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / vn[n - 1] as u128;
        let mut rhat = num % vn[n - 1] as u128;
        while qhat >= 1u128 << 64
            || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= 1u128 << 64 {
                break;
            }
        }

        // Multiply-and-subtract qhat * vn from un[j..j+n+1].
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - borrow - (p as u64) as i128;
            un[i + j] = t as u64;
            borrow = -(t >> 64);
        }
        let t = un[j + n] as i128 - borrow - carry as i128;
        un[j + n] = t as u64;

        if t < 0 {
            // qhat was one too large: add the divisor back.
            qhat -= 1;
            let mut c: u128 = 0;
            for i in 0..n {
                let sum = un[i + j] as u128 + vn[i] as u128 + c;
                un[i + j] = sum as u64;
                c = sum >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    // Denormalize the remainder.
    let mut r = vec![0u64; n];
    if s == 0 {
        r.copy_from_slice(&un[..n]);
    } else {
        for i in 0..n {
            let hi = if i + 1 < n + 1 { un[i + 1] } else { 0 };
            r[i] = (un[i] >> s) | (hi << (64 - s));
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn bytes_roundtrip() {
        let cases: &[&[u8]] = &[
            &[],
            &[0x01],
            &[0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77],
            &[0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
        ];
        for &c in cases {
            let v = BigUint::from_bytes_be(c);
            let back = v.to_bytes_be();
            // Leading zeros are not preserved; compare trimmed.
            let trimmed: Vec<u8> = c.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, trimmed);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        let a = BigUint::from_bytes_be(&[0, 0, 0, 5, 6]);
        let b = BigUint::from_bytes_be(&[5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn padded_serialization() {
        let v = big(0xabcd);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0xab, 0xcd]);
        assert_eq!(v.to_bytes_be_padded(2).unwrap(), vec![0xab, 0xcd]);
        assert!(v.to_bytes_be_padded(1).is_none());
        assert_eq!(
            BigUint::zero().to_bytes_be_padded(3).unwrap(),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = big(u128::MAX);
        let b = BigUint::one();
        let sum = a.add(&b);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.shr(128), BigUint::one());
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::one().shl(128);
        let b = BigUint::one();
        let d = a.sub(&b);
        assert_eq!(d, big(u128::MAX));
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(big(0).mul(&big(12345)), big(0));
        assert_eq!(big(1 << 40).mul(&big(1 << 50)), BigUint::one().shl(90));
        assert_eq!(
            big(0xffff_ffff_ffff_ffff).mul(&big(0xffff_ffff_ffff_ffff)),
            big(0xffff_ffff_ffff_fffe_0000_0000_0000_0001)
        );
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]);
        let (q, r) = a.div_rem(&big(1000));
        assert_eq!(q.mul(&big(1000)).add(&r), a);
        assert!(r < big(1000));
    }

    #[test]
    fn div_rem_equal_and_smaller() {
        let a = big(777);
        assert_eq!(a.div_rem(&a), (BigUint::one(), BigUint::zero()));
        assert_eq!(big(5).div_rem(&big(9)), (BigUint::zero(), big(5)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn knuth_add_back_case() {
        // Exercise the rare "add back" branch with a crafted dividend:
        // u = b^2 * (b/2) and v = b*(b/2)+1 style values force qhat
        // overestimation (b = 2^64).
        let b_half = 1u64 << 63;
        let u = BigUint::from_limbs(vec![0, 0, 0, b_half]);
        let v = BigUint::from_limbs(vec![1, b_half]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn shifts_roundtrip() {
        let v = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03]);
        for s in [0usize, 1, 7, 63, 64, 65, 127, 200] {
            assert_eq!(v.shl(s).shr(s), v, "shift {s}");
        }
        assert_eq!(v.shr(1000), BigUint::zero());
    }

    #[test]
    fn pow_mod_small_known() {
        // 4^13 mod 497 = 445 (classic textbook example).
        assert_eq!(big(4).pow_mod(&big(13), &big(497)), big(445));
        // Fermat: 2^(p-1) mod p = 1 for prime p.
        let p = big(1_000_000_007);
        assert_eq!(big(2).pow_mod(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn pow_mod_even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3 (even modulus path).
        assert_eq!(big(3).pow_mod(&big(5), &big(16)), big(3));
        assert_eq!(big(7).pow_mod(&BigUint::zero(), &big(16)), BigUint::one());
    }

    #[test]
    fn gcd_known() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 7 = 21 = 1 mod 10.
        assert_eq!(big(3).mod_inverse(&big(10)), Some(big(7)));
        // Not coprime.
        assert_eq!(big(4).mod_inverse(&big(10)), None);
        assert_eq!(big(0).mod_inverse(&big(10)), None);
        assert_eq!(big(3).mod_inverse(&BigUint::one()), None);
    }

    #[test]
    fn mod_inverse_even_modulus() {
        // d = 3^-1 mod phi with even phi, the RSA key-generation case.
        let phi = big(3120); // phi for p=61, q=53
        let e = big(17);
        let d = e.mod_inverse(&phi).unwrap();
        assert_eq!(e.mul_mod(&d, &phi), BigUint::one());
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 5, 63, 64, 65, 256, 512] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn rem_u64_known_values() {
        assert_eq!(BigUint::zero().rem_u64(7), 0);
        assert_eq!(big(u128::MAX).rem_u64(1), 0);
        assert_eq!(
            big(u128::MAX).rem_u64(u64::MAX),
            (u128::MAX % u64::MAX as u128) as u64
        );
        // Three-limb value against a 13-bit modulus (the sieve case).
        let v = BigUint::one().shl(191).add(&big(12345));
        assert_eq!(BigUint::from_u64(v.rem_u64(8191)), v.rem(&big(8191)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem_u64_zero_modulus_panics() {
        let _ = big(5).rem_u64(0);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = big(1_000_003);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let (ba, bb) = (big(a), big(b));
            prop_assert_eq!(ba.add(&bb).sub(&bb), ba);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let expect = big(a as u128 * b as u128);
            prop_assert_eq!(big(a as u128).mul(&big(b as u128)), expect);
        }

        #[test]
        fn prop_div_rem_identity_u128(a in any::<u128>(), b in 1u128..) {
            let (ba, bb) = (big(a), big(b));
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.mul(&bb).add(&r), ba.clone());
            prop_assert!(r < bb);
            prop_assert_eq!(q, big(a / b));
            prop_assert_eq!(ba.rem(&bb), big(a % b));
        }

        #[test]
        fn prop_div_rem_identity_wide(
            a in proptest::collection::vec(any::<u8>(), 1..96),
            b in proptest::collection::vec(any::<u8>(), 1..40),
        ) {
            let ba = BigUint::from_bytes_be(&a);
            let bb = BigUint::from_bytes_be(&b);
            prop_assume!(!bb.is_zero());
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.mul(&bb).add(&r), ba);
            prop_assert!(r < bb);
        }

        #[test]
        fn prop_pow_mod_agrees_with_generic(
            base in any::<u64>(),
            exp in any::<u16>(),
            modulus in 3u64..,
        ) {
            let m = big((modulus | 1) as u128); // force odd -> Montgomery path
            let b = big(base as u128);
            let e = big(exp as u128);
            let mont = b.pow_mod(&e, &m);
            let generic = b.pow_mod_generic(&e, &m);
            prop_assert_eq!(mont, generic);
        }

        #[test]
        fn prop_rem_u64_matches_rem(
            a in proptest::collection::vec(any::<u8>(), 0..96),
            m in 1u64..,
        ) {
            let ba = BigUint::from_bytes_be(&a);
            let expect = ba.rem(&BigUint::from_u64(m));
            prop_assert_eq!(BigUint::from_u64(ba.rem_u64(m)), expect);
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&bytes);
            let back = BigUint::from_bytes_be(&v.to_bytes_be());
            prop_assert_eq!(v, back);
        }

        #[test]
        fn prop_gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
            let g = big(a as u128).gcd(&big(b as u128));
            if !g.is_zero() {
                prop_assert!(big(a as u128).rem(&g).is_zero());
                prop_assert!(big(b as u128).rem(&g).is_zero());
            }
        }

        #[test]
        fn prop_mod_inverse_valid(a in 1u64.., m in 2u64..) {
            let (ba, bm) = (big(a as u128), big(m as u128));
            match ba.mod_inverse(&bm) {
                Some(inv) => {
                    prop_assert!(inv < bm);
                    prop_assert_eq!(ba.mul_mod(&inv, &bm), BigUint::one());
                }
                None => {
                    let g = ba.gcd(&bm);
                    prop_assert!(!g.is_one());
                }
            }
        }
    }
}
