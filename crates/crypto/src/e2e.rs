//! End-to-end encryption channel.
//!
//! §3.1 treats end-to-end encryption "as a black box" (e.g. IPsec). This
//! module is the box's concrete body: a hybrid scheme — RSA-1024 key
//! transport plus AES-CTR confidentiality plus CMAC integrity — with both a
//! one-shot envelope (for the first packet to a destination) and a
//! symmetric session for everything after. The destination also uses this
//! channel to return the neutralizer-stamped `(nonce', Ks')` pair of §3.2
//! to the source.

use crate::cmac::Cmac;
use crate::ctr::AesCtr;
use crate::error::{CryptoError, Result};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use rand::Rng;

/// Everything needed to decrypt a one-shot message: RSA-wrapped session
/// key, CTR nonce, ciphertext, and a CMAC tag over the lot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct E2eEnvelope {
    /// RSA ciphertext of the 16-byte session key.
    pub wrapped_key: Vec<u8>,
    /// CTR nonce.
    pub nonce: u64,
    /// AES-CTR ciphertext of the payload.
    pub ciphertext: Vec<u8>,
    /// CMAC over `nonce ‖ ciphertext` under the derived MAC key.
    pub tag: [u8; 16],
}

impl E2eEnvelope {
    /// Serializes for transport inside a packet payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(2 + self.wrapped_key.len() + 8 + 4 + self.ciphertext.len() + 16);
        out.extend_from_slice(&(self.wrapped_key.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.wrapped_key);
        out.extend_from_slice(&self.nonce.to_be_bytes());
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses an envelope, rejecting truncated or oversized structures.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 2 {
            return Err(CryptoError::BadLength);
        }
        let klen = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        let mut off = 2;
        if bytes.len() < off + klen + 8 + 4 {
            return Err(CryptoError::BadLength);
        }
        let wrapped_key = bytes[off..off + klen].to_vec();
        off += klen;
        let nonce = u64::from_be_bytes(bytes[off..off + 8].try_into().unwrap());
        off += 8;
        let clen = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if bytes.len() != off + clen + 16 {
            return Err(CryptoError::BadLength);
        }
        let ciphertext = bytes[off..off + clen].to_vec();
        off += clen;
        let tag: [u8; 16] = bytes[off..off + 16].try_into().unwrap();
        Ok(E2eEnvelope {
            wrapped_key,
            nonce,
            ciphertext,
            tag,
        })
    }
}

/// Derives independent encryption and MAC keys from a session key.
fn split_keys(session_key: &[u8; 16]) -> ([u8; 16], [u8; 16]) {
    let mac = Cmac::new(session_key);
    (mac.tag(b"e2e-enc"), mac.tag(b"e2e-mac"))
}

/// Encrypts `plaintext` to `recipient` as a one-shot envelope.
pub fn seal<R: Rng + ?Sized>(
    rng: &mut R,
    recipient: &RsaPublicKey,
    plaintext: &[u8],
) -> Result<E2eEnvelope> {
    let session_key: [u8; 16] = rng.gen();
    seal_keyed(rng, recipient, plaintext, &session_key)
}

/// Like [`seal`], but with a caller-chosen session key, so the sender can
/// keep using the key for a symmetric [`E2eSession`] afterwards.
pub fn seal_keyed<R: Rng + ?Sized>(
    rng: &mut R,
    recipient: &RsaPublicKey,
    plaintext: &[u8],
    session_key: &[u8; 16],
) -> Result<E2eEnvelope> {
    let session_key = *session_key;
    let nonce: u64 = rng.gen();
    let wrapped_key = recipient.encrypt(rng, &session_key)?;
    let (enc_key, mac_key) = split_keys(&session_key);
    let mut ciphertext = plaintext.to_vec();
    AesCtr::new(&enc_key).apply_keystream(nonce, &mut ciphertext);
    let tag = Cmac::new(&mac_key).tag_parts(&[&nonce.to_be_bytes(), &ciphertext]);
    Ok(E2eEnvelope {
        wrapped_key,
        nonce,
        ciphertext,
        tag,
    })
}

/// Opens a one-shot envelope; also returns the recovered session key so the
/// receiver can continue with a symmetric [`E2eSession`].
pub fn open(private: &RsaPrivateKey, env: &E2eEnvelope) -> Result<(Vec<u8>, [u8; 16])> {
    let key_bytes = private.decrypt(&env.wrapped_key)?;
    let session_key: [u8; 16] = key_bytes
        .as_slice()
        .try_into()
        .map_err(|_| CryptoError::BadKey)?;
    let (enc_key, mac_key) = split_keys(&session_key);
    let mac = Cmac::new(&mac_key);
    if !mac.verify_parts(&[&env.nonce.to_be_bytes(), &env.ciphertext], &env.tag) {
        return Err(CryptoError::AuthFailed);
    }
    let mut plaintext = env.ciphertext.clone();
    AesCtr::new(&enc_key).apply_keystream(env.nonce, &mut plaintext);
    Ok((plaintext, session_key))
}

/// An established symmetric channel: after the first envelope both ends
/// share `session_key` and exchange sealed records without public-key work.
#[derive(Clone)]
pub struct E2eSession {
    enc: AesCtr,
    mac: Cmac,
    /// Monotonic nonce for the sending direction.
    next_nonce: u64,
}

impl core::fmt::Debug for E2eSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("E2eSession(<keys>)")
    }
}

/// A sealed record on an established session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct E2eRecord {
    /// Per-record CTR nonce (even = initiator, odd = responder).
    pub nonce: u64,
    /// AES-CTR ciphertext.
    pub ciphertext: Vec<u8>,
    /// CMAC over `nonce ‖ ciphertext`.
    pub tag: [u8; 16],
}

impl E2eRecord {
    /// Serializes as `nonce ‖ len ‖ ciphertext ‖ tag`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + self.ciphertext.len() + 16);
        out.extend_from_slice(&self.nonce.to_be_bytes());
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses a record.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 + 4 + 16 {
            return Err(CryptoError::BadLength);
        }
        let nonce = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let clen = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if bytes.len() != 12 + clen + 16 {
            return Err(CryptoError::BadLength);
        }
        let ciphertext = bytes[12..12 + clen].to_vec();
        let tag: [u8; 16] = bytes[12 + clen..].try_into().unwrap();
        Ok(E2eRecord {
            nonce,
            ciphertext,
            tag,
        })
    }
}

impl E2eSession {
    /// Builds a session from a shared key. `direction` separates the two
    /// nonce spaces so initiator and responder never collide: initiators
    /// use even nonces, responders odd.
    pub fn new(session_key: &[u8; 16], initiator: bool) -> Self {
        let (enc_key, mac_key) = split_keys(session_key);
        E2eSession {
            enc: AesCtr::new(&enc_key),
            mac: Cmac::new(&mac_key),
            next_nonce: if initiator { 0 } else { 1 },
        }
    }

    /// Seals a record in the sending direction.
    pub fn seal_record(&mut self, plaintext: &[u8]) -> E2eRecord {
        let nonce = self.next_nonce;
        self.next_nonce = self.next_nonce.wrapping_add(2);
        let mut ciphertext = plaintext.to_vec();
        self.enc.apply_keystream(nonce, &mut ciphertext);
        let tag = self.mac.tag_parts(&[&nonce.to_be_bytes(), &ciphertext]);
        E2eRecord {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Opens a record from the peer.
    pub fn open_record(&self, record: &E2eRecord) -> Result<Vec<u8>> {
        let parts: [&[u8]; 2] = [&record.nonce.to_be_bytes(), &record.ciphertext];
        if !self.mac.verify_parts(&parts, &record.tag) {
            return Err(CryptoError::AuthFailed);
        }
        let mut plaintext = record.ciphertext.clone();
        self.enc.apply_keystream(record.nonce, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::generate_keypair;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, crate::rsa::RsaKeypair) {
        let mut rng = StdRng::seed_from_u64(42);
        let kp = generate_keypair(&mut rng, 512);
        (rng, kp)
    }

    #[test]
    fn envelope_roundtrip() {
        let (mut rng, kp) = setup();
        let msg = b"the quick brown packet jumps over the lazy middlebox";
        let env = seal(&mut rng, &kp.public, msg).unwrap();
        let (plain, _key) = open(&kp.private, &env).unwrap();
        assert_eq!(plain, msg);
    }

    #[test]
    fn seal_keyed_retains_caller_key() {
        let (mut rng, kp) = setup();
        let key = [0x5a; 16];
        let env = seal_keyed(&mut rng, &kp.public, b"m", &key).unwrap();
        let (plain, got) = open(&kp.private, &env).unwrap();
        assert_eq!(plain, b"m");
        assert_eq!(got, key);
    }

    #[test]
    fn envelope_wire_roundtrip() {
        let (mut rng, kp) = setup();
        let env = seal(&mut rng, &kp.public, b"payload").unwrap();
        let bytes = env.to_bytes();
        let parsed = E2eEnvelope::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, env);
        let (plain, _) = open(&kp.private, &parsed).unwrap();
        assert_eq!(plain, b"payload");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (mut rng, kp) = setup();
        let mut env = seal(&mut rng, &kp.public, b"sensitive").unwrap();
        env.ciphertext[0] ^= 1;
        assert_eq!(
            open(&kp.private, &env).unwrap_err(),
            CryptoError::AuthFailed
        );
    }

    #[test]
    fn tampered_tag_rejected() {
        let (mut rng, kp) = setup();
        let mut env = seal(&mut rng, &kp.public, b"sensitive").unwrap();
        env.tag[15] ^= 0x40;
        assert_eq!(
            open(&kp.private, &env).unwrap_err(),
            CryptoError::AuthFailed
        );
    }

    #[test]
    fn wrong_recipient_rejected() {
        let (mut rng, kp) = setup();
        let other = generate_keypair(&mut rng, 512);
        let env = seal(&mut rng, &kp.public, b"for kp only").unwrap();
        assert!(open(&other.private, &env).is_err());
    }

    #[test]
    fn truncated_envelope_rejected() {
        let (mut rng, kp) = setup();
        let bytes = seal(&mut rng, &kp.public, b"x").unwrap().to_bytes();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(E2eEnvelope::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn session_bidirectional() {
        let key = [0x77u8; 16];
        let mut alice = E2eSession::new(&key, true);
        let mut bob = E2eSession::new(&key, false);

        let r1 = alice.seal_record(b"hello bob");
        assert_eq!(bob.open_record(&r1).unwrap(), b"hello bob");
        let r2 = bob.seal_record(b"hello alice");
        assert_eq!(alice.open_record(&r2).unwrap(), b"hello alice");
        // Nonce spaces must not collide.
        assert_ne!(r1.nonce, r2.nonce);
    }

    #[test]
    fn session_record_wire_roundtrip() {
        let key = [0x12u8; 16];
        let mut s = E2eSession::new(&key, true);
        let r = s.seal_record(b"record payload");
        let parsed = E2eRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn session_rejects_forgery() {
        let key = [0x13u8; 16];
        let mut a = E2eSession::new(&key, true);
        let b = E2eSession::new(&key, false);
        let mut r = a.seal_record(b"authentic");
        r.ciphertext.push(0);
        assert!(b.open_record(&r).is_err());
    }

    #[test]
    fn handshake_key_continuity() {
        // The session key recovered from the envelope drives a session that
        // interoperates with the sender's.
        let (mut rng, kp) = setup();
        let env = seal(&mut rng, &kp.public, b"first packet").unwrap();
        let (_, session_key) = open(&kp.private, &env).unwrap();
        let mut receiver = E2eSession::new(&session_key, false);
        let sender = E2eSession::new(&session_key, true);
        let rec = receiver.seal_record(b"reply");
        assert_eq!(sender.open_record(&rec).unwrap(), b"reply");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_session_roundtrip(key in any::<[u8;16]>(), msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8)) {
            let mut tx = E2eSession::new(&key, true);
            let rx = E2eSession::new(&key, false);
            for m in &msgs {
                let r = tx.seal_record(m);
                prop_assert_eq!(&rx.open_record(&r).unwrap(), m);
            }
        }
    }
}
