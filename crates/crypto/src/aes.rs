//! AES-128 block cipher.
//!
//! §4 of the paper: "Our implementation uses 128-bit AES for both hashing
//! and encryption/decryption." AES therefore sits on the data-path hot loop
//! (experiments T2/T3): one keyed-hash (CMAC) plus one block operation per
//! neutralized packet.
//!
//! The implementation is the classic T-table formulation: SubBytes,
//! ShiftRows and MixColumns collapse into four 256-entry u32 lookups per
//! column per round (forward `Te` tables for encryption, `Td` tables plus
//! InvMixColumns-transformed round keys for the equivalent inverse
//! cipher). All tables are derived at first use from the GF(2^8)
//! definition rather than transcribed, and the implementation is
//! validated against the FIPS-197 appendix vectors in the tests below.
//!
//! [`Aes128::encrypt_blocks`] pipelines pairs of blocks through the
//! rounds together, giving the CTR keystream path instruction-level
//! parallelism on top of the table lookups. Two lanes is the measured
//! sweet spot: eight live state words fit the register file, where four
//! lanes spill every round and run no faster than single blocks.

use std::sync::OnceLock;

/// S-boxes and round T-tables, computed once from the field definition.
struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// Forward tables: `te[i][x]` is the MixColumns contribution of
    /// S-boxed byte `x` at row `i`, packed row-0-in-MSB.
    te: [[u32; 256]; 4],
    /// Inverse tables: `td[i][x]` is the InvMixColumns contribution of
    /// inverse-S-boxed byte `x` at row `i`.
    td: [[u32; 256]; 4],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Box<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for i in 0..256u16 {
            let x = gf_inv(i as u8);
            let b = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            sbox[i as usize] = b;
            inv_sbox[b as usize] = i as u8;
        }
        let mut te = [[0u32; 256]; 4];
        let mut td = [[0u32; 256]; 4];
        for x in 0..256usize {
            // MixColumns matrix column for an input byte at row 0 is
            // (2,1,1,3)^T; the other rows are byte rotations of it.
            let s = sbox[x];
            let e = u32::from_be_bytes([gf_mul(s, 2), s, s, gf_mul(s, 3)]);
            // InvMixColumns matrix column at row 0 is (e,9,d,b)^T.
            let is = inv_sbox[x];
            let d = u32::from_be_bytes([
                gf_mul(is, 0x0e),
                gf_mul(is, 0x09),
                gf_mul(is, 0x0d),
                gf_mul(is, 0x0b),
            ]);
            for row in 0..4 {
                te[row][x] = e.rotate_right(8 * row as u32);
                td[row][x] = d.rotate_right(8 * row as u32);
            }
        }
        Box::new(Tables {
            sbox,
            inv_sbox,
            te,
            td,
        })
    })
}

/// GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// GF(2^8) inverse via a^254 (a^(2^8-2)); inv(0) is defined as 0.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u16;
    while e > 0 {
        if e & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

/// InvMixColumns on one packed column word, straight from the GF(2^8)
/// matrix — the reference the table-based key-schedule transform is
/// checked against in tests.
#[cfg(test)]
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        gf_mul(a, 0x0e) ^ gf_mul(b, 0x0b) ^ gf_mul(c, 0x0d) ^ gf_mul(d, 0x09),
        gf_mul(a, 0x09) ^ gf_mul(b, 0x0e) ^ gf_mul(c, 0x0b) ^ gf_mul(d, 0x0d),
        gf_mul(a, 0x0d) ^ gf_mul(b, 0x09) ^ gf_mul(c, 0x0e) ^ gf_mul(d, 0x0b),
        gf_mul(a, 0x0b) ^ gf_mul(b, 0x0d) ^ gf_mul(c, 0x09) ^ gf_mul(d, 0x0e),
    ])
}

/// How many blocks [`Aes128::encrypt_blocks`] pipelines per inner pass.
pub const BATCH: usize = 2;

/// AES-128 with a precomputed key schedule.
///
/// The block byte layout is the FIPS-197 order: byte `i` of a block is
/// state column `i / 4`, row `i % 4`; each column is held as a
/// big-endian-packed u32 (row 0 in the most significant byte).
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys × 4 columns, encryption order.
    ek: [u32; 44],
    /// Equivalent-inverse-cipher round keys: reversed, with
    /// InvMixColumns applied to the nine inner round keys.
    dk: [u32; 44],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Aes128(<key schedule>)")
    }
}

impl Aes128 {
    /// Expands a 128-bit key into the 11 round keys (both directions).
    pub fn new(key: &[u8; 16]) -> Self {
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        let t = tables();
        let sub_word = |w: u32| -> u32 {
            let [a, b, c, d] = w.to_be_bytes();
            u32::from_be_bytes([
                t.sbox[a as usize],
                t.sbox[b as usize],
                t.sbox[c as usize],
                t.sbox[d as usize],
            ])
        };
        let mut ek = [0u32; 44];
        for (i, w) in ek.iter_mut().take(4).enumerate() {
            *w = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in 4..44 {
            let mut temp = ek[i - 1];
            if i % 4 == 0 {
                // RotWord then SubWord then Rcon on the top byte.
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / 4 - 1] as u32) << 24);
            }
            ek[i] = ek[i - 4] ^ temp;
        }
        // Inverse schedule: round keys reversed, inner ones passed
        // through InvMixColumns so decryption can use the same
        // table-lookup round shape as encryption. Td[r][S[x]] is the
        // InvMixColumns contribution of plain byte x at row r (the
        // forward S-box cancels the inverse one baked into Td), so the
        // transform is four lookups per word instead of GF multiplies.
        let mut dk = [0u32; 44];
        for round in 0..11 {
            for col in 0..4 {
                let w = ek[4 * (10 - round) + col];
                dk[4 * round + col] = if round == 0 || round == 10 {
                    w
                } else {
                    let [a, b, c, d] = w.to_be_bytes();
                    t.td[0][t.sbox[a as usize] as usize]
                        ^ t.td[1][t.sbox[b as usize] as usize]
                        ^ t.td[2][t.sbox[c as usize] as usize]
                        ^ t.td[3][t.sbox[d as usize] as usize]
                };
            }
        }
        Aes128 { ek, dk }
    }

    /// Encrypts one block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        let mut s = load_columns(block);
        xor_round_key(&mut s, &self.ek[..4]);
        for round in 1..10 {
            s = enc_round(&s, t, &self.ek[4 * round..4 * round + 4]);
        }
        store_columns(block, &enc_last_round(&s, &t.sbox, &self.ek[40..44]));
    }

    /// Encrypts a batch of blocks in place, pipelining [`BATCH`] blocks
    /// through the rounds together so independent table lookups overlap.
    /// Bit-identical to calling [`encrypt_block`](Self::encrypt_block)
    /// on each block.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        let t = tables();
        let mut chunks = blocks.chunks_exact_mut(BATCH);
        for chunk in &mut chunks {
            let mut a = load_columns(&chunk[0]);
            let mut b = load_columns(&chunk[1]);
            xor_round_key(&mut a, &self.ek[..4]);
            xor_round_key(&mut b, &self.ek[..4]);
            for round in 1..10 {
                let rk = &self.ek[4 * round..4 * round + 4];
                a = enc_round(&a, t, rk);
                b = enc_round(&b, t, rk);
            }
            let rk = &self.ek[40..44];
            store_columns(&mut chunk[0], &enc_last_round(&a, &t.sbox, rk));
            store_columns(&mut chunk[1], &enc_last_round(&b, &t.sbox, rk));
        }
        for block in chunks.into_remainder() {
            self.encrypt_block(block);
        }
    }

    /// Decrypts one block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        let mut s = load_columns(block);
        xor_round_key(&mut s, &self.dk[..4]);
        for round in 1..10 {
            s = dec_round(&s, t, &self.dk[4 * round..4 * round + 4]);
        }
        store_columns(block, &dec_last_round(&s, &t.inv_sbox, &self.dk[40..44]));
    }

    /// Encrypts a copy of the block (convenience for keystream generation).
    #[inline]
    pub fn encrypt_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

/// Loads the four big-endian column words of a block.
#[inline]
fn load_columns(block: &[u8; 16]) -> [u32; 4] {
    core::array::from_fn(|c| {
        u32::from_be_bytes([
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ])
    })
}

/// Stores four column words back into block bytes.
#[inline]
fn store_columns(block: &mut [u8; 16], s: &[u32; 4]) {
    for c in 0..4 {
        block[4 * c..4 * c + 4].copy_from_slice(&s[c].to_be_bytes());
    }
}

#[inline]
fn xor_round_key(s: &mut [u32; 4], rk: &[u32]) {
    for (w, k) in s.iter_mut().zip(rk) {
        *w ^= k;
    }
}

/// One full forward round: SubBytes + ShiftRows + MixColumns +
/// AddRoundKey. Output column `j` draws row `r` from input column
/// `(j + r) % 4` (ShiftRows rotates row `r` left by `r`). Written with
/// explicit scalars so the sixteen table lookups stay independent and
/// fully unrolled.
#[inline(always)]
fn enc_round(s: &[u32; 4], t: &Tables, rk: &[u32]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    let (te0, te1, te2, te3) = (&t.te[0], &t.te[1], &t.te[2], &t.te[3]);
    [
        te0[(s0 >> 24) as u8 as usize]
            ^ te1[(s1 >> 16) as u8 as usize]
            ^ te2[(s2 >> 8) as u8 as usize]
            ^ te3[s3 as u8 as usize]
            ^ rk[0],
        te0[(s1 >> 24) as u8 as usize]
            ^ te1[(s2 >> 16) as u8 as usize]
            ^ te2[(s3 >> 8) as u8 as usize]
            ^ te3[s0 as u8 as usize]
            ^ rk[1],
        te0[(s2 >> 24) as u8 as usize]
            ^ te1[(s3 >> 16) as u8 as usize]
            ^ te2[(s0 >> 8) as u8 as usize]
            ^ te3[s1 as u8 as usize]
            ^ rk[2],
        te0[(s3 >> 24) as u8 as usize]
            ^ te1[(s0 >> 16) as u8 as usize]
            ^ te2[(s1 >> 8) as u8 as usize]
            ^ te3[s2 as u8 as usize]
            ^ rk[3],
    ]
}

/// The final forward round (no MixColumns): plain S-box bytes.
#[inline(always)]
fn enc_last_round(s: &[u32; 4], sbox: &[u8; 256], rk: &[u32]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    let col = |a: u32, b: u32, c: u32, d: u32| {
        ((sbox[(a >> 24) as u8 as usize] as u32) << 24)
            | ((sbox[(b >> 16) as u8 as usize] as u32) << 16)
            | ((sbox[(c >> 8) as u8 as usize] as u32) << 8)
            | (sbox[d as u8 as usize] as u32)
    };
    [
        col(s0, s1, s2, s3) ^ rk[0],
        col(s1, s2, s3, s0) ^ rk[1],
        col(s2, s3, s0, s1) ^ rk[2],
        col(s3, s0, s1, s2) ^ rk[3],
    ]
}

/// One equivalent-inverse round. InvShiftRows rotates row `r` right by
/// `r`, so output column `j` draws row `r` from column `(j + 4 - r) % 4`.
#[inline(always)]
fn dec_round(s: &[u32; 4], t: &Tables, rk: &[u32]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    let (td0, td1, td2, td3) = (&t.td[0], &t.td[1], &t.td[2], &t.td[3]);
    [
        td0[(s0 >> 24) as u8 as usize]
            ^ td1[(s3 >> 16) as u8 as usize]
            ^ td2[(s2 >> 8) as u8 as usize]
            ^ td3[s1 as u8 as usize]
            ^ rk[0],
        td0[(s1 >> 24) as u8 as usize]
            ^ td1[(s0 >> 16) as u8 as usize]
            ^ td2[(s3 >> 8) as u8 as usize]
            ^ td3[s2 as u8 as usize]
            ^ rk[1],
        td0[(s2 >> 24) as u8 as usize]
            ^ td1[(s1 >> 16) as u8 as usize]
            ^ td2[(s0 >> 8) as u8 as usize]
            ^ td3[s3 as u8 as usize]
            ^ rk[2],
        td0[(s3 >> 24) as u8 as usize]
            ^ td1[(s2 >> 16) as u8 as usize]
            ^ td2[(s1 >> 8) as u8 as usize]
            ^ td3[s0 as u8 as usize]
            ^ rk[3],
    ]
}

/// The final inverse round: plain inverse S-box bytes.
#[inline(always)]
fn dec_last_round(s: &[u32; 4], inv_sbox: &[u8; 256], rk: &[u32]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    let col = |a: u32, b: u32, c: u32, d: u32| {
        ((inv_sbox[(a >> 24) as u8 as usize] as u32) << 24)
            | ((inv_sbox[(b >> 16) as u8 as usize] as u32) << 16)
            | ((inv_sbox[(c >> 8) as u8 as usize] as u32) << 8)
            | (inv_sbox[d as u8 as usize] as u32)
    };
    [
        col(s0, s3, s2, s1) ^ rk[0],
        col(s1, s0, s3, s2) ^ rk[1],
        col(s2, s1, s0, s3) ^ rk[2],
        col(s3, s2, s1, s0) ^ rk[3],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> [u8; 16] {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.inv_sbox[0x63], 0x00);
        assert_eq!(t.inv_sbox[0xed], 0x53);
        // S-box is a permutation.
        let mut seen = [false; 256];
        for &b in t.sbox.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
    }

    #[test]
    fn gf_mul_known() {
        // FIPS-197 §4.2: {57} * {83} = {c1}, {57} * {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x00, 0xff), 0x00);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn t_tables_match_field_definition() {
        let t = tables();
        for x in 0..256usize {
            let s = t.sbox[x];
            let expect = u32::from_be_bytes([gf_mul(s, 2), s, s, gf_mul(s, 3)]);
            assert_eq!(t.te[0][x], expect, "Te0[{x:#x}]");
            let is = t.inv_sbox[x];
            let expect = u32::from_be_bytes([
                gf_mul(is, 0x0e),
                gf_mul(is, 0x09),
                gf_mul(is, 0x0d),
                gf_mul(is, 0x0b),
            ]);
            assert_eq!(t.td[0][x], expect, "Td0[{x:#x}]");
            for row in 1..4 {
                assert_eq!(t.te[row][x], t.te[0][x].rotate_right(8 * row as u32));
                assert_eq!(t.td[row][x], t.td[0][x].rotate_right(8 * row as u32));
            }
        }
    }

    #[test]
    fn table_key_schedule_transform_matches_inv_mix() {
        // The Td[r][S[x]] shortcut used in Aes128::new must equal the
        // direct InvMixColumns matrix product for every word.
        let t = tables();
        for w in [0x0000_0000u32, 0x0102_0304, 0xdead_beef, 0xffff_ffff] {
            let [a, b, c, d] = w.to_be_bytes();
            let via_tables = t.td[0][t.sbox[a as usize] as usize]
                ^ t.td[1][t.sbox[b as usize] as usize]
                ^ t.td[2][t.sbox[c as usize] as usize]
                ^ t.td[3][t.sbox[d as usize] as usize];
            assert_eq!(via_tables, inv_mix_word(w), "w={w:#010x}");
        }
    }

    #[test]
    fn inv_mix_word_inverts_mix() {
        // MixColumns of a lone byte at row 0 is Te0 with the S-box
        // stripped: check inv_mix_word undoes the forward matrix.
        for w in [0x0102_0304u32, 0xdead_beef, 0x0000_0001, 0xffff_ffff] {
            let [a, b, c, d] = w.to_be_bytes();
            let mixed = u32::from_be_bytes([
                gf_mul(a, 2) ^ gf_mul(b, 3) ^ c ^ d,
                a ^ gf_mul(b, 2) ^ gf_mul(c, 3) ^ d,
                a ^ b ^ gf_mul(c, 2) ^ gf_mul(d, 3),
                gf_mul(a, 3) ^ b ^ c ^ gf_mul(d, 2),
            ]);
            assert_eq!(inv_mix_word(mixed), w, "w={w:#010x}");
        }
    }

    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let mut b = block("3243f6a8885a308d313198a2e0370734");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn batch_encrypt_matches_single_blocks() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        // Lengths around the batch width, including the ragged tail.
        for len in 0..=(2 * BATCH + 1) {
            let mut batch: Vec<[u8; 16]> = (0..len)
                .map(|i| core::array::from_fn(|j| (i * 16 + j) as u8))
                .collect();
            let singles: Vec<[u8; 16]> = batch.iter().map(|b| aes.encrypt_copy(b)).collect();
            aes.encrypt_blocks(&mut batch);
            assert_eq!(batch, singles, "len={len}");
        }
    }

    #[test]
    fn different_keys_differ() {
        let a1 = Aes128::new(&[0u8; 16]);
        let a2 = Aes128::new(&[1u8; 16]);
        let b = [0x42u8; 16];
        assert_ne!(a1.encrypt_copy(&b), a2.encrypt_copy(&b));
    }

    proptest! {
        #[test]
        fn prop_encrypt_decrypt_roundtrip(key in any::<[u8;16]>(), data in any::<[u8;16]>()) {
            let aes = Aes128::new(&key);
            let mut b = data;
            aes.encrypt_block(&mut b);
            aes.decrypt_block(&mut b);
            prop_assert_eq!(b, data);
        }

        #[test]
        fn prop_encryption_is_permutation(key in any::<[u8;16]>(), d1 in any::<[u8;16]>(), d2 in any::<[u8;16]>()) {
            prop_assume!(d1 != d2);
            let aes = Aes128::new(&key);
            prop_assert_ne!(aes.encrypt_copy(&d1), aes.encrypt_copy(&d2));
        }

        #[test]
        fn prop_batch_matches_singles(
            key in any::<[u8;16]>(),
            blocks in proptest::collection::vec(any::<[u8;16]>(), 0..12),
        ) {
            let aes = Aes128::new(&key);
            let singles: Vec<[u8;16]> = blocks.iter().map(|b| aes.encrypt_copy(b)).collect();
            let mut batch = blocks;
            aes.encrypt_blocks(&mut batch);
            prop_assert_eq!(batch, singles);
        }
    }
}
