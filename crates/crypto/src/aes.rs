//! AES-128 block cipher.
//!
//! §4 of the paper: "Our implementation uses 128-bit AES for both hashing
//! and encryption/decryption." AES therefore sits on the data-path hot loop
//! (experiments T2/T3): one keyed-hash (CMAC) plus one block operation per
//! neutralized packet.
//!
//! The S-boxes are derived at first use from the GF(2^8) definition rather
//! than transcribed, and the implementation is validated against the
//! FIPS-197 appendix vectors in the tests below.

use std::sync::OnceLock;

/// Forward and inverse S-boxes, computed once.
struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for i in 0..256u16 {
            let x = gf_inv(i as u8);
            let b = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            sbox[i as usize] = b;
            inv_sbox[b as usize] = i as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// GF(2^8) inverse via a^254 (a^(2^8-2)); inv(0) is defined as 0.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u16;
    while e > 0 {
        if e & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// AES-128 with a precomputed key schedule.
///
/// The state layout is the FIPS-197 byte order: byte `i` of a block is
/// state column `i / 4`, row `i % 4`.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys × 16 bytes, flattened.
    round_keys: [u8; 176],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Aes128(<key schedule>)")
    }
}

impl Aes128 {
    /// Expands a 128-bit key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        let sbox = &tables().sbox;
        let mut rk = [0u8; 176];
        rk[..16].copy_from_slice(key);
        for i in 4..44 {
            let mut temp = [
                rk[(i - 1) * 4],
                rk[(i - 1) * 4 + 1],
                rk[(i - 1) * 4 + 2],
                rk[(i - 1) * 4 + 3],
            ];
            if i % 4 == 0 {
                // RotWord then SubWord then Rcon.
                temp = [
                    sbox[temp[1] as usize] ^ RCON[i / 4 - 1],
                    sbox[temp[2] as usize],
                    sbox[temp[3] as usize],
                    sbox[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                rk[i * 4 + j] = rk[(i - 4) * 4 + j] ^ temp[j];
            }
        }
        Aes128 { round_keys: rk }
    }

    #[inline]
    fn add_round_key(&self, state: &mut [u8; 16], round: usize) {
        let rk = &self.round_keys[round * 16..round * 16 + 16];
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    /// Encrypts one block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let sbox = &tables().sbox;
        self.add_round_key(block, 0);
        for round in 1..10 {
            sub_bytes(block, sbox);
            shift_rows(block);
            mix_columns(block);
            self.add_round_key(block, round);
        }
        sub_bytes(block, sbox);
        shift_rows(block);
        self.add_round_key(block, 10);
    }

    /// Decrypts one block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let inv = &tables().inv_sbox;
        self.add_round_key(block, 10);
        for round in (1..10).rev() {
            inv_shift_rows(block);
            sub_bytes(block, inv);
            self.add_round_key(block, round);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        sub_bytes(block, inv);
        self.add_round_key(block, 0);
    }

    /// Encrypts a copy of the block (convenience for keystream generation).
    #[inline]
    pub fn encrypt_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16], table: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = table[*b as usize];
    }
}

/// Row `r` rotates left by `r`; with the flat column-major layout,
/// new[4c + r] = old[4((c + r) mod 4) + r].
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for c in 0..4 {
        for r in 1..4 {
            state[4 * c + r] = old[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for c in 0..4 {
        for r in 1..4 {
            state[4 * ((c + r) % 4) + r] = old[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        let u = col[0];
        let c01 = xtime(col[0] ^ col[1]);
        let c12 = xtime(col[1] ^ col[2]);
        let c23 = xtime(col[2] ^ col[3]);
        let c30 = xtime(col[3] ^ u);
        col[0] ^= t ^ c01;
        col[1] ^= t ^ c12;
        col[2] ^= t ^ c23;
        col[3] ^= t ^ c30;
    }
}

/// InvMixColumns via the standard decomposition: a pre-transform by
/// {04,04} on (a0,a2)/(a1,a3) pairs followed by the forward MixColumns.
#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let u = xtime(xtime(col[0] ^ col[2]));
        let v = xtime(xtime(col[1] ^ col[3]));
        col[0] ^= u;
        col[2] ^= u;
        col[1] ^= v;
        col[3] ^= v;
    }
    mix_columns(state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> [u8; 16] {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.inv_sbox[0x63], 0x00);
        assert_eq!(t.inv_sbox[0xed], 0x53);
        // S-box is a permutation.
        let mut seen = [false; 256];
        for &b in t.sbox.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
    }

    #[test]
    fn gf_mul_known() {
        // FIPS-197 §4.2: {57} * {83} = {c1}, {57} * {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x00, 0xff), 0x00);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let mut b = block("3243f6a8885a308d313198a2e0370734");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn shift_rows_inverse() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
        let orig = s;
        mix_columns(&mut s);
        assert_ne!(s, orig);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn different_keys_differ() {
        let a1 = Aes128::new(&[0u8; 16]);
        let a2 = Aes128::new(&[1u8; 16]);
        let b = [0x42u8; 16];
        assert_ne!(a1.encrypt_copy(&b), a2.encrypt_copy(&b));
    }

    proptest! {
        #[test]
        fn prop_encrypt_decrypt_roundtrip(key in any::<[u8;16]>(), data in any::<[u8;16]>()) {
            let aes = Aes128::new(&key);
            let mut b = data;
            aes.encrypt_block(&mut b);
            aes.decrypt_block(&mut b);
            prop_assert_eq!(b, data);
        }

        #[test]
        fn prop_encryption_is_permutation(key in any::<[u8;16]>(), d1 in any::<[u8;16]>(), d2 in any::<[u8;16]>()) {
            prop_assume!(d1 != d2);
            let aes = Aes128::new(&key);
            prop_assert_ne!(aes.encrypt_copy(&d1), aes.encrypt_copy(&d2));
        }
    }
}
