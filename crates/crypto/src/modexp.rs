//! Montgomery modular arithmetic.
//!
//! Every modulus used by the neutralizer protocol (RSA moduli, primes) is
//! odd, so Montgomery reduction applies. The neutralizer performs one RSA
//! *encryption* per key-setup packet (§3.2, §4 of the paper); keeping that
//! operation cheap is what makes the key-setup path DoS-tolerant, so this
//! module is on the hot path of experiment T1.

use crate::biguint::BigUint;

/// Precomputed Montgomery context for a fixed odd modulus.
pub struct Montgomery {
    n: BigUint,
    n_limbs: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64 * n_limbs.len())`.
    r2: BigUint,
}

impl Montgomery {
    /// Builds a context for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Self {
        assert!(!n.is_even(), "Montgomery reduction requires an odd modulus");
        assert!(!n.is_one() && !n.is_zero(), "modulus must exceed 1");
        let n_limbs = n.limbs().to_vec();
        let n0 = n_limbs[0];
        // Newton iteration for n0^{-1} mod 2^64: doubles correct bits each
        // round; x = 1 is correct mod 2 for odd n0, so 6 rounds reach 64.
        let mut x: u64 = 1;
        for _ in 0..6 {
            x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0inv = x.wrapping_neg();
        let r2 = BigUint::one().shl(128 * n_limbs.len()).rem(n);
        Montgomery {
            n: n.clone(),
            n_limbs,
            n0inv,
            r2,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    fn len(&self) -> usize {
        self.n_limbs.len()
    }

    /// Montgomery reduction of a (≤ 2·len limb) value held in `t`.
    /// Computes `t * R^{-1} mod n`.
    fn redc(&self, t: &mut Vec<u64>) -> BigUint {
        let len = self.len();
        t.resize(2 * len + 1, 0);
        for i in 0..len {
            let m = t[i].wrapping_mul(self.n0inv);
            let mut carry = 0u128;
            for j in 0..len {
                let p = m as u128 * self.n_limbs[j] as u128 + t[i + j] as u128 + carry;
                t[i + j] = p as u64;
                carry = p >> 64;
            }
            let mut k = i + len;
            while carry != 0 {
                let p = t[k] as u128 + carry;
                t[k] = p as u64;
                carry = p >> 64;
                k += 1;
            }
        }
        let mut res = BigUint::from_limbs(t[len..].to_vec());
        if res >= self.n {
            res = res.sub(&self.n);
        }
        res
    }

    /// Product of two values already in Montgomery form.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let prod = a.mul(b);
        let mut t = prod.limbs().to_vec();
        self.redc(&mut t)
    }

    /// Converts into Montgomery form: `x * R mod n`.
    fn to_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &self.r2)
    }

    /// Converts out of Montgomery form: `x * R^{-1} mod n`.
    fn demont(&self, x: &BigUint) -> BigUint {
        let mut t = x.limbs().to_vec();
        self.redc(&mut t)
    }

    /// `base ^ exponent mod n` by right-to-left binary exponentiation.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&self.n);
        }
        let mut b = self.to_mont(&base.rem(&self.n));
        // 1 in Montgomery form is R mod n = redc(R^2).
        let mut acc = {
            let mut t = self.r2.limbs().to_vec();
            self.redc(&mut t)
        };
        let bits = exponent.bit_len();
        for i in 0..bits {
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &b);
            }
            if i + 1 < bits {
                b = self.mont_mul(&b, &b);
            }
        }
        self.demont(&acc)
    }

    /// Modular multiplication `a * b mod n` through the Montgomery domain.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(&a.rem(&self.n));
        let bm = self.to_mont(&b.rem(&self.n));
        self.demont(&self.mont_mul(&am, &bm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn pow_matches_known_values() {
        let m = Montgomery::new(&big(1_000_000_007));
        assert_eq!(m.pow(&big(2), &big(10)), big(1024));
        assert_eq!(m.pow(&big(5), &BigUint::zero()), BigUint::one());
        // Fermat's little theorem.
        assert_eq!(m.pow(&big(1234567), &big(1_000_000_006)), BigUint::one());
    }

    #[test]
    fn pow_with_base_larger_than_modulus() {
        let m = Montgomery::new(&big(97));
        assert_eq!(m.pow(&big(1000), &big(3)), big(1000u128.pow(3) % 97));
    }

    #[test]
    fn mul_mod_matches_naive() {
        let m = Montgomery::new(&big(0xffff_ffff_ffff_fff1));
        let a = big(0x1234_5678_9abc_def0);
        let b = big(0xfedc_ba98_7654_3210);
        assert_eq!(m.mul_mod(&a, &b), a.mul_mod(&b, m.modulus()));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(&big(100));
    }

    #[test]
    fn multi_limb_modulus() {
        // 2^127 - 1 is a Mersenne prime; exercises a 2-limb modulus.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let m = Montgomery::new(&p);
        let base = big(3);
        assert_eq!(m.pow(&base, &p.sub(&BigUint::one())), BigUint::one());
    }

    proptest! {
        #[test]
        fn prop_pow_matches_naive_u64(
            base in any::<u64>(),
            exp in any::<u8>(),
            modulus in 3u64..,
        ) {
            let n = big((modulus | 1) as u128);
            let mont = Montgomery::new(&n);
            // Naive: repeated mul_mod via BigUint primitives.
            let mut expect = BigUint::one().rem(&n);
            let b = big(base as u128).rem(&n);
            for _ in 0..exp {
                expect = expect.mul_mod(&b, &n);
            }
            prop_assert_eq!(mont.pow(&big(base as u128), &big(exp as u128)), expect);
        }

        #[test]
        fn prop_mul_mod_matches_naive(
            a in any::<u128>(),
            b in any::<u128>(),
            modulus in 3u128..,
        ) {
            let n = big(modulus | 1);
            let mont = Montgomery::new(&n);
            let (ba, bb) = (big(a), big(b));
            prop_assert_eq!(mont.mul_mod(&ba, &bb), ba.mul_mod(&bb, &n));
        }
    }
}
