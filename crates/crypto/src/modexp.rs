//! Montgomery modular arithmetic.
//!
//! Every modulus used by the neutralizer protocol (RSA moduli, primes) is
//! odd, so Montgomery reduction applies. The neutralizer performs one RSA
//! *encryption* per key-setup packet (§3.2, §4 of the paper); keeping that
//! operation cheap is what makes the key-setup path DoS-tolerant, so this
//! module is on the hot path of experiment T1.
//!
//! Multiplication uses the CIOS (coarsely integrated operand scanning)
//! method: multiply and reduce are interleaved over fixed-length limb
//! buffers, so no intermediate [`BigUint`] is allocated per product.
//! Exponentiation walks the exponent MSB-first with a fixed 4-bit window
//! (15 precomputed odd-and-even powers, four squarings plus at most one
//! multiply per digit) once the exponent is large enough to amortize the
//! table; short exponents (RSA e = 3) take a plain square-and-multiply
//! ladder.

use crate::biguint::BigUint;

/// Exponents at or below this bit length skip window precomputation.
const WINDOW_MIN_BITS: usize = 16;

/// Precomputed Montgomery context for a fixed odd modulus.
#[derive(Clone)]
pub struct Montgomery {
    n: BigUint,
    n_limbs: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64 * n_limbs.len())`, padded to full width.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Self {
        assert!(!n.is_even(), "Montgomery reduction requires an odd modulus");
        assert!(!n.is_one() && !n.is_zero(), "modulus must exceed 1");
        let n_limbs = n.limbs().to_vec();
        let n0 = n_limbs[0];
        // Newton iteration for n0^{-1} mod 2^64: doubles correct bits each
        // round; x = 1 is correct mod 2 for odd n0, so 6 rounds reach 64.
        let mut x: u64 = 1;
        for _ in 0..6 {
            x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0inv = x.wrapping_neg();
        let mut r2 = BigUint::one().shl(128 * n_limbs.len()).rem(n).into_limbs();
        r2.resize(n_limbs.len(), 0);
        Montgomery {
            n: n.clone(),
            n_limbs,
            n0inv,
            r2,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    fn len(&self) -> usize {
        self.n_limbs.len()
    }

    /// CIOS Montgomery product: `out = a * b * R^{-1} mod n`.
    ///
    /// `a` and `b` must be `len` limbs, fully reduced; `out` receives
    /// `len` limbs; `t` is scratch of at least `len + 2` limbs.
    fn cios(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let l = self.len();
        let t = &mut t[..l + 2];
        t.fill(0);
        for &ai in &a[..l] {
            // t += ai * b, widening into t[l] / t[l+1].
            let mut carry = 0u64;
            for j in 0..l {
                let p = ai as u128 * b[j] as u128 + t[j] as u128 + carry as u128;
                t[j] = p as u64;
                carry = (p >> 64) as u64;
            }
            let p = t[l] as u128 + carry as u128;
            t[l] = p as u64;
            t[l + 1] = (p >> 64) as u64;
            // Fold in m*n, shifting t down one limb: one Montgomery step.
            let m = t[0].wrapping_mul(self.n0inv);
            let p = m as u128 * self.n_limbs[0] as u128 + t[0] as u128;
            let mut carry = (p >> 64) as u64;
            for j in 1..l {
                let p = m as u128 * self.n_limbs[j] as u128 + t[j] as u128 + carry as u128;
                t[j - 1] = p as u64;
                carry = (p >> 64) as u64;
            }
            let p = t[l] as u128 + carry as u128;
            t[l - 1] = p as u64;
            // Cannot overflow: the running value stays below 2n * 2^64.
            t[l] = t[l + 1] + (p >> 64) as u64;
        }
        // Final conditional subtraction brings the result below n.
        let ge = t[l] != 0 || {
            let mut ge = true;
            for j in (0..l).rev() {
                if t[j] != self.n_limbs[j] {
                    ge = t[j] > self.n_limbs[j];
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow = 0u64;
            for j in 0..l {
                let (d1, b1) = t[j].overflowing_sub(self.n_limbs[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out[..l].copy_from_slice(&t[..l]);
        }
    }

    /// Pads a fully-reduced value to the modulus width.
    fn pad(&self, x: &BigUint) -> Vec<u64> {
        debug_assert!(*x < self.n);
        let mut v = x.limbs().to_vec();
        v.resize(self.len(), 0);
        v
    }

    /// `base ^ exponent mod n`.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let l = self.len();
        let mut scratch = vec![0u64; l + 2];
        let mut base_m = vec![0u64; l];
        self.cios(
            &self.pad(&base.rem(&self.n)),
            &self.r2,
            &mut base_m,
            &mut scratch,
        );
        let acc = self.pow_mont_limbs(&base_m, exponent, &mut scratch);
        let mut one = vec![0u64; l];
        one[0] = 1;
        let mut tmp = vec![0u64; l];
        self.cios(&acc, &one, &mut tmp, &mut scratch);
        BigUint::from_limbs(tmp)
    }

    /// Montgomery-domain exponentiation core: `base_m` is in Montgomery
    /// form and the result stays in Montgomery form — no exit conversion.
    ///
    /// [`MontCtx`] builds Miller–Rabin on this so every squaring,
    /// multiply, and comparison of a candidate happens in-domain;
    /// [`Montgomery::pow`] wraps it with the entry/exit conversions.
    /// `scratch` must hold at least `len + 2` limbs.
    fn pow_mont_limbs(&self, base_m: &[u64], exponent: &BigUint, scratch: &mut [u64]) -> Vec<u64> {
        let l = self.len();
        let mut one = vec![0u64; l];
        one[0] = 1;
        if exponent.is_zero() {
            // 1 in Montgomery form is R mod n = mont(1 * R^2).
            let mut one_m = vec![0u64; l];
            self.cios(&self.r2, &one, &mut one_m, scratch);
            return one_m;
        }

        let bits = exponent.bit_len();
        let mut acc;
        let mut tmp = vec![0u64; l];
        if bits <= WINDOW_MIN_BITS {
            // Square-and-multiply, MSB-first: cheap for the public
            // exponent (e = 3) on the key-setup encrypt path.
            acc = base_m.to_vec();
            for i in (0..bits - 1).rev() {
                self.cios(&acc, &acc, &mut tmp, scratch);
                std::mem::swap(&mut acc, &mut tmp);
                if exponent.bit(i) {
                    self.cios(&acc, base_m, &mut tmp, scratch);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
        } else {
            // Fixed 4-bit window for the long CRT exponents: precompute
            // base^0..base^15 in Montgomery form, then four squarings and
            // at most one table multiply per exponent digit.
            let mut table: Vec<Vec<u64>> = Vec::with_capacity(16);
            let mut one_m = vec![0u64; l];
            self.cios(&self.r2, &one, &mut one_m, scratch);
            table.push(one_m);
            table.push(base_m.to_vec());
            for i in 2..16 {
                let mut next = vec![0u64; l];
                self.cios(&table[i - 1], &table[1], &mut next, scratch);
                table.push(next);
            }
            // 4 divides 64, so a digit never straddles a limb boundary.
            let limbs = exponent.limbs();
            let digit = |k: usize| -> usize {
                let bit = 4 * k;
                ((limbs[bit / 64] >> (bit % 64)) & 0xf) as usize
            };
            let top = bits.div_ceil(4) - 1;
            acc = table[digit(top)].clone();
            for k in (0..top).rev() {
                for _ in 0..4 {
                    self.cios(&acc, &acc, &mut tmp, scratch);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                let d = digit(k);
                if d != 0 {
                    self.cios(&acc, &table[d], &mut tmp, scratch);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
        }
        acc
    }

    /// Modular multiplication `a * b mod n` through the Montgomery domain.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let l = self.len();
        let mut scratch = vec![0u64; l + 2];
        let mut am = vec![0u64; l];
        let mut bm = vec![0u64; l];
        self.cios(&self.pad(&a.rem(&self.n)), &self.r2, &mut am, &mut scratch);
        self.cios(&self.pad(&b.rem(&self.n)), &self.r2, &mut bm, &mut scratch);
        let mut prod = vec![0u64; l];
        self.cios(&am, &bm, &mut prod, &mut scratch);
        let mut one = vec![0u64; l];
        one[0] = 1;
        let mut out = vec![0u64; l];
        self.cios(&prod, &one, &mut out, &mut scratch);
        BigUint::from_limbs(out)
    }
}

/// A reusable Montgomery workspace that keeps intermediate values *in*
/// Montgomery form between operations.
///
/// [`Montgomery::pow`] and [`Montgomery::mul_mod`] convert in and out of
/// the domain on every call — fine for one-shot RSA operations, wasteful
/// for Miller–Rabin, which chains dozens of exponentiations and squarings
/// against the *same* candidate modulus. `MontCtx` owns the scratch
/// buffers once and exposes the domain directly: values are `len`-limb
/// vectors in Montgomery form, always fully reduced below `n` (the CIOS
/// final subtraction guarantees this), so in-domain values compare with
/// plain `==`.
pub struct MontCtx {
    m: Montgomery,
    /// CIOS scratch, `len + 2` limbs.
    scratch: Vec<u64>,
    /// Secondary output buffer for in-place operations.
    tmp: Vec<u64>,
}

impl MontCtx {
    /// Builds a workspace for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Self {
        let m = Montgomery::new(n);
        let l = m.len();
        MontCtx {
            scratch: vec![0u64; l + 2],
            tmp: vec![0u64; l],
            m,
        }
    }

    /// The modulus this workspace reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.m.n
    }

    /// Converts `x` into Montgomery form (`x * R mod n`, padded limbs).
    pub fn to_mont(&mut self, x: &BigUint) -> Vec<u64> {
        let padded = self.m.pad(&x.rem(&self.m.n));
        let mut out = vec![0u64; self.m.len()];
        self.m
            .cios(&padded, &self.m.r2, &mut out, &mut self.scratch);
        out
    }

    /// Converts a Montgomery-form value back to a plain [`BigUint`].
    pub fn from_mont(&mut self, x_m: &[u64]) -> BigUint {
        let l = self.m.len();
        let mut one = vec![0u64; l];
        one[0] = 1;
        let mut out = vec![0u64; l];
        self.m.cios(x_m, &one, &mut out, &mut self.scratch);
        BigUint::from_limbs(out)
    }

    /// In-domain product of two Montgomery-form values.
    pub fn mul_mont(&mut self, a_m: &[u64], b_m: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.m.len()];
        self.m.cios(a_m, b_m, &mut out, &mut self.scratch);
        out
    }

    /// Squares a Montgomery-form value in place, reusing the workspace
    /// buffers — the Miller–Rabin inner loop is exactly `s - 1` of these.
    pub fn square_in_place(&mut self, x_m: &mut Vec<u64>) {
        self.m.cios(x_m, x_m, &mut self.tmp, &mut self.scratch);
        std::mem::swap(x_m, &mut self.tmp);
    }

    /// `base ^ exponent mod n`, returned in Montgomery form so callers
    /// can keep chaining squarings and comparisons without conversions.
    pub fn pow_mont(&mut self, base: &BigUint, exponent: &BigUint) -> Vec<u64> {
        let base_m = self.to_mont(base);
        self.m.pow_mont_limbs(&base_m, exponent, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn pow_matches_known_values() {
        let m = Montgomery::new(&big(1_000_000_007));
        assert_eq!(m.pow(&big(2), &big(10)), big(1024));
        assert_eq!(m.pow(&big(5), &BigUint::zero()), BigUint::one());
        // Fermat's little theorem.
        assert_eq!(m.pow(&big(1234567), &big(1_000_000_006)), BigUint::one());
    }

    #[test]
    fn pow_with_base_larger_than_modulus() {
        let m = Montgomery::new(&big(97));
        assert_eq!(m.pow(&big(1000), &big(3)), big(1000u128.pow(3) % 97));
    }

    #[test]
    fn mul_mod_matches_naive() {
        let m = Montgomery::new(&big(0xffff_ffff_ffff_fff1));
        let a = big(0x1234_5678_9abc_def0);
        let b = big(0xfedc_ba98_7654_3210);
        assert_eq!(m.mul_mod(&a, &b), a.mul_mod(&b, m.modulus()));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(&big(100));
    }

    #[test]
    fn multi_limb_modulus() {
        // 2^127 - 1 is a Mersenne prime; exercises a 2-limb modulus.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let m = Montgomery::new(&p);
        let base = big(3);
        assert_eq!(m.pow(&base, &p.sub(&BigUint::one())), BigUint::one());
    }

    #[test]
    fn windowed_path_crosses_threshold_consistently() {
        // Exponents straddling WINDOW_MIN_BITS must agree with a naive
        // square-and-multiply reference built from BigUint::mul_mod.
        let n = BigUint::one().shl(127).sub(&BigUint::one());
        let base = big(0xdead_beef_cafe_f00d);
        for bits in [15usize, 16, 17, 20, 64] {
            let e = BigUint::one().shl(bits).sub(&BigUint::one());
            let m = Montgomery::new(&n);
            let mut expect = BigUint::one();
            let b = base.rem(&n);
            for _ in 0..bits {
                expect = expect.mul_mod(&expect, &n);
                expect = expect.mul_mod(&b, &n);
            }
            assert_eq!(m.pow(&base, &e), expect, "bits={bits}");
        }
    }

    #[test]
    fn mont_ctx_roundtrip_and_ops_match_montgomery() {
        let n = BigUint::one().shl(127).sub(&BigUint::one());
        let m = Montgomery::new(&n);
        let mut ctx = MontCtx::new(&n);
        let a = big(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let b = big(0xfedc_ba98_7654_3210);
        // to_mont / from_mont round-trips.
        let am = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&am), a.rem(&n));
        // mul_mont in-domain equals mul_mod.
        let bm = ctx.to_mont(&b);
        let prod = ctx.mul_mont(&am, &bm);
        assert_eq!(ctx.from_mont(&prod), m.mul_mod(&a, &b));
        // square_in_place equals mul_mod(x, x).
        let mut sq = am.clone();
        ctx.square_in_place(&mut sq);
        assert_eq!(ctx.from_mont(&sq), m.mul_mod(&a, &a));
        // pow_mont equals pow after leaving the domain, including exp = 0.
        for e in [0u128, 1, 2, 3, 65537, u128::MAX] {
            let e = big(e);
            let pm = ctx.pow_mont(&a, &e);
            assert_eq!(ctx.from_mont(&pm), m.pow(&a, &e));
        }
    }

    #[test]
    fn mont_ctx_values_compare_in_domain() {
        // CIOS output is fully reduced, so equal residues have equal
        // Montgomery-form limb vectors — the property Miller–Rabin's
        // in-domain `==` checks rely on.
        let n = big(1_000_000_007);
        let mut ctx = MontCtx::new(&n);
        let x = big(123_456_789);
        let same = big(123_456_789 + 1_000_000_007);
        assert_eq!(ctx.to_mont(&x), ctx.to_mont(&same));
        assert_ne!(ctx.to_mont(&x), ctx.to_mont(&big(42)));
    }

    proptest! {
        #[test]
        fn prop_mont_ctx_pow_matches_pow(
            base in any::<u128>(),
            exp in any::<u64>(),
            modulus in 3u128..,
        ) {
            let n = big(modulus | 1);
            let mont = Montgomery::new(&n);
            let mut ctx = MontCtx::new(&n);
            let (b, e) = (big(base), big(exp as u128));
            let pm = ctx.pow_mont(&b, &e);
            prop_assert_eq!(ctx.from_mont(&pm), mont.pow(&b, &e));
        }

        #[test]
        fn prop_pow_matches_naive_u64(
            base in any::<u64>(),
            exp in any::<u8>(),
            modulus in 3u64..,
        ) {
            let n = big((modulus | 1) as u128);
            let mont = Montgomery::new(&n);
            // Naive: repeated mul_mod via BigUint primitives.
            let mut expect = BigUint::one().rem(&n);
            let b = big(base as u128).rem(&n);
            for _ in 0..exp {
                expect = expect.mul_mod(&b, &n);
            }
            prop_assert_eq!(mont.pow(&big(base as u128), &big(exp as u128)), expect);
        }

        #[test]
        fn prop_pow_matches_naive_multilimb(
            base in any::<u128>(),
            exp in any::<u32>(),
            modulus in 5u128..,
        ) {
            // Multi-limb moduli with window-sized exponents: reference is
            // MSB-first square-and-multiply over BigUint::mul_mod.
            let n = big(modulus | 1);
            let mont = Montgomery::new(&n);
            let e = big(exp as u128);
            let b = big(base).rem(&n);
            let mut expect = BigUint::one().rem(&n);
            for i in (0..e.bit_len()).rev() {
                expect = expect.mul_mod(&expect, &n);
                if e.bit(i) {
                    expect = expect.mul_mod(&b, &n);
                }
            }
            prop_assert_eq!(mont.pow(&big(base), &e), expect);
        }

        #[test]
        fn prop_mul_mod_matches_naive(
            a in any::<u128>(),
            b in any::<u128>(),
            modulus in 3u128..,
        ) {
            let n = big(modulus | 1);
            let mont = Montgomery::new(&n);
            let (ba, bb) = (big(a), big(b));
            prop_assert_eq!(mont.mul_mod(&ba, &bb), ba.mul_mod(&bb, &n));
        }
    }
}
