//! Factoring machinery for the security-window experiment (E6).
//!
//! §3.2: "A 512-bit RSA key is only as secure as a 56-bit symmetric key. To
//! improve security, we let a source use a short RSA key only once, and
//! expire the symmetric Ks key quickly... As long as a discriminatory ISP
//! does not factor the short RSA key before K's is returned to the source
//! (which takes two round trip times), the discriminatory ISP cannot
//! decrypt the destination address."
//!
//! This module makes that argument measurable on hardware we actually have:
//! Pollard's rho (Brent variant) factors *scaled-down* semiprimes, giving a
//! measured cost curve versus modulus size, and an explicit model
//! extrapolates to 512 bits for comparison against the 2-RTT rollover
//! window.

use crate::error::{CryptoError, Result};

/// Deterministic Miller–Rabin for u128 (sufficient witness set for < 2^64;
/// extended set keeps the error negligible for our < 2^100 scaled moduli).
pub fn is_prime_u128(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u128(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod_u128(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// `a * b mod n` without overflow for n < 2^127.
fn mul_mod_u128(a: u128, b: u128, n: u128) -> u128 {
    // Russian-peasant multiplication; operands stay below 2^127.
    let mut result = 0u128;
    let mut a = a % n;
    let mut b = b % n;
    while b > 0 {
        if b & 1 == 1 {
            result = (result + a) % n;
        }
        a = (a << 1) % n;
        b >>= 1;
    }
    result
}

fn pow_mod_u128(mut base: u128, mut exp: u128, n: u128) -> u128 {
    let mut acc = 1u128;
    base %= n;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u128(acc, base, n);
        }
        base = mul_mod_u128(base, base, n);
        exp >>= 1;
    }
    acc
}

/// Pollard's rho with Brent's cycle detection. Returns a non-trivial
/// factor of composite `n`, or an error if the iteration budget runs out.
pub fn pollard_rho(n: u128, max_iters: u64) -> Result<u128> {
    if n.is_multiple_of(2) {
        return Ok(2);
    }
    if n < 4 {
        return Err(CryptoError::NotSemiprime);
    }
    let gcd = |mut a: u128, mut b: u128| {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    };
    // Deterministic restart schedule keeps the experiment reproducible.
    for c in 1u128..64 {
        let mut iters = 0u64;
        let f = |x: u128| (mul_mod_u128(x, x, n) + c) % n;
        let mut x = 2u128;
        let mut y = 2u128;
        let mut d = 1u128;
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
            iters += 1;
            if iters > max_iters {
                return Err(CryptoError::FactorBudgetExhausted);
            }
        }
        if d != n {
            return Ok(d);
        }
        // Cycle collapsed onto n itself; retry with the next polynomial.
    }
    Err(CryptoError::FactorBudgetExhausted)
}

/// Fully factors a semiprime `n = p * q` with both factors prime.
pub fn factor_semiprime(n: u128, max_iters: u64) -> Result<(u128, u128)> {
    if is_prime_u128(n) {
        return Err(CryptoError::NotSemiprime);
    }
    let p = pollard_rho(n, max_iters)?;
    let q = n / p;
    if p * q != n || !is_prime_u128(p) || !is_prime_u128(q) {
        return Err(CryptoError::NotSemiprime);
    }
    Ok((p.min(q), p.max(q)))
}

/// Relative cost model for factoring a `bits`-bit modulus.
///
/// Pollard rho costs ~2^(bits/4) modular operations (it finds the smaller
/// prime, ~bits/2 bits, in O(p^(1/2))). The general number field sieve is
/// asymptotically better for large moduli; for the *comparison the paper
/// makes* — "far longer than two round-trips" — the rho curve is already a
/// conservative lower bound on attacker effort, and we report both.
pub fn rho_ops_estimate(bits: u32) -> f64 {
    2f64.powf(bits as f64 / 4.0)
}

/// GNFS heuristic complexity `exp((64/9)^(1/3) (ln n)^(1/3) (ln ln n)^(2/3))`,
/// normalized to "operations".
pub fn gnfs_ops_estimate(bits: u32) -> f64 {
    let ln_n = bits as f64 * core::f64::consts::LN_2;
    let c = (64f64 / 9.0).powf(1.0 / 3.0);
    (c * ln_n.powf(1.0 / 3.0) * ln_n.ln().powf(2.0 / 3.0)).exp()
}

/// Extrapolates measured per-op time on scaled moduli to a target size.
///
/// `measured` is a slice of `(bits, seconds)` pairs from actual rho runs;
/// the fit solves for the constant factor on [`rho_ops_estimate`] and
/// applies it at `target_bits`.
pub fn extrapolate_rho_seconds(measured: &[(u32, f64)], target_bits: u32) -> f64 {
    assert!(!measured.is_empty(), "need at least one measurement");
    let mut scale_sum = 0.0;
    for &(bits, secs) in measured {
        scale_sum += secs / rho_ops_estimate(bits);
    }
    let scale = scale_sum / measured.len() as f64;
    scale * rho_ops_estimate(target_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_test_known_values() {
        assert!(is_prime_u128(2));
        assert!(is_prime_u128(3));
        assert!(is_prime_u128(1_000_000_007));
        assert!(is_prime_u128((1u128 << 89) - 1)); // Mersenne prime
        assert!(!is_prime_u128(1));
        assert!(!is_prime_u128(561)); // Carmichael
        assert!(!is_prime_u128((1u128 << 89) + 1));
    }

    #[test]
    fn mul_mod_no_overflow() {
        let n = (1u128 << 100) + 7;
        let a = n - 1;
        assert_eq!(mul_mod_u128(a, a, n), 1); // (-1)^2 = 1 mod n
    }

    #[test]
    fn rho_factors_small_semiprime() {
        let f = pollard_rho(101 * 103, 1_000_000).unwrap();
        assert!(f == 101 || f == 103);
    }

    #[test]
    fn semiprime_full_factorization() {
        let (p, q) = factor_semiprime(1_000_003u128 * 1_000_033, 10_000_000).unwrap();
        assert_eq!((p, q), (1_000_003, 1_000_033));
    }

    #[test]
    fn prime_input_rejected() {
        assert_eq!(
            factor_semiprime(1_000_000_007, 1000),
            Err(CryptoError::NotSemiprime)
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        // Two ~31-bit primes: rho needs ~2^16 iterations, budget of 10 is
        // far too small.
        let n = 2_147_483_647u128 * 2_147_483_629;
        assert_eq!(pollard_rho(n, 10), Err(CryptoError::FactorBudgetExhausted));
    }

    #[test]
    fn cost_models_monotone() {
        assert!(rho_ops_estimate(64) < rho_ops_estimate(128));
        assert!(gnfs_ops_estimate(256) < gnfs_ops_estimate(512));
        // At 512 bits GNFS beats rho by a wide margin (that is why it is
        // the real-world attack), so rho is the conservative bound.
        assert!(gnfs_ops_estimate(512) < rho_ops_estimate(512));
    }

    #[test]
    fn extrapolation_scales_linearly_with_model() {
        let measured = [(40u32, 1.0f64), (48, 4.0)];
        let t512 = extrapolate_rho_seconds(&measured, 512);
        assert!(
            t512 > 1e30,
            "512-bit extrapolation must be astronomically large, got {t512}"
        );
    }
}
