//! Prime generation for one-time RSA keys.
//!
//! The paper's sources mint a fresh 512-bit RSA key per connection (§3.2),
//! so prime generation must be fast for 256-bit primes. Candidate search
//! uses a **windowed incremental sieve**: draw one random odd base, compute
//! `base mod p` once per small prime with a word-level limb scan
//! ([`BigUint::rem_u64`]), mark composite offsets across a whole window of
//! odd candidates, and run Miller–Rabin only on the survivors — with the
//! test itself built on a reusable [`MontCtx`] so every squaring and
//! comparison stays in Montgomery form end to end.

use crate::biguint::BigUint;
use crate::modexp::MontCtx;
use rand::Rng;
use std::sync::OnceLock;

/// Primes below this bound are used for trial division of candidates.
const SIEVE_BOUND: usize = 8192;

/// Number of Miller–Rabin rounds for *arbitrary* (possibly adversarial)
/// inputs to [`is_probable_prime`]: 32 random bases push the worst-case
/// error probability below 4^-32 = 2^-64 regardless of input size.
const MR_ROUNDS: usize = 32;

/// Odd candidates examined per sieve window: `base, base+2, …`.
///
/// At 256 bits a window this wide holds ~11 primes in expectation
/// (2·1024/ln 2^256), so a single sieve pass — one `rem_u64` per small
/// prime — almost always serves the whole search for one prime.
const SIEVE_WINDOW: usize = 1024;

/// Returns all primes below [`SIEVE_BOUND`], computed once (Eratosthenes)
/// and cached for the life of the process.
pub fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let mut is_comp = vec![false; SIEVE_BOUND];
        let mut primes = Vec::new();
        for i in 2..SIEVE_BOUND {
            if !is_comp[i] {
                primes.push(i as u64);
                let mut j = i * i;
                while j < SIEVE_BOUND {
                    is_comp[j] = true;
                    j += i;
                }
            }
        }
        primes
    })
}

/// Sieves a window of odd candidates `base + 2k` for `k in 0..count`,
/// returning `true` at offsets that survive trial division by every prime
/// below [`SIEVE_BOUND`].
///
/// One `base mod p` limb scan per sieve prime covers the whole window:
/// `base + 2k ≡ 0 (mod p)` at `k ≡ (p - base mod p) · 2^{-1} (mod p)`,
/// and for odd `p` the inverse of 2 is just `(p + 1) / 2`.
///
/// `base` must be odd and at least [`SIEVE_BOUND`] (so a candidate can
/// never *be* one of the sieve primes); both are asserted.
pub fn sieve_window(base: &BigUint, count: usize) -> Vec<bool> {
    assert!(!base.is_even(), "sieve_window requires an odd base");
    assert!(
        base.bit_len() > 13,
        "sieve_window base must exceed SIEVE_BOUND"
    );
    let mut survives = vec![true; count];
    for &p in small_primes() {
        if p == 2 {
            continue; // every candidate is odd
        }
        let r = base.rem_u64(p);
        let inv2 = p.div_ceil(2);
        let mut k = (((p - r) % p) * inv2 % p) as usize;
        while k < count {
            survives[k] = false;
            k += p as usize;
        }
    }
    survives
}

/// Miller–Rabin core with `rounds` random bases over one shared
/// Montgomery workspace.
///
/// `n` must be odd and greater than every sieve prime; callers are
/// expected to have already trial-divided it. All squarings and
/// comparisons (against `1` and `n - 1`) happen in Montgomery form —
/// CIOS output is fully reduced, so in-domain `==` is sound.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let mut ctx = MontCtx::new(n);
    let one_m = ctx.to_mont(&BigUint::one());
    let nm1_m = ctx.to_mont(&n_minus_1);
    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = loop {
            let a = BigUint::random_below(rng, &n_minus_1);
            if !a.is_zero() && !a.is_one() {
                break a;
            }
        };
        let mut x = ctx.pow_mont(&a, &d);
        if x == one_m || x == nm1_m {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            ctx.square_in_place(&mut x);
            if x == nm1_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Miller–Rabin rounds needed for error < 2^-80 on a *uniformly random*
/// sieved candidate of the given bit length.
///
/// For random odd `n` the probability that a composite survives `t`
/// rounds is far below the worst-case 4^-t — Damgård–Landrock–Pomerance
/// bound it explicitly, tabulated as HAC Table 4.4. [`gen_prime`] draws
/// candidates uniformly, so these reduced counts apply; adversarially
/// *chosen* inputs (the [`is_probable_prime`] API) still get the full
/// [`MR_ROUNDS`].
fn mr_rounds_random(bits: usize) -> usize {
    match bits {
        0..=99 => MR_ROUNDS,
        100..=149 => 27,
        150..=199 => 18,
        200..=249 => 15,
        250..=299 => 12,
        300..=349 => 9,
        350..=399 => 8,
        400..=449 => 7,
        _ => 6,
    }
}

/// Miller–Rabin probabilistic primality test with random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n.is_even() {
        return *n == BigUint::from_u64(2);
    }
    // Trial division by small primes — one word-level limb scan each.
    for &p in small_primes() {
        if n.rem_u64(p) == 0 {
            // Divisible by p: prime only if n *is* p (single-limb check;
            // every sieve prime fits in 13 bits).
            return n.bit_len() <= 13 && n.limbs()[0] == p;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Generates a random prime with exactly `bits` bits.
///
/// When `two_top_bits` is set, the two most significant bits are forced to
/// one so that the product of two such primes always has full `2*bits`
/// length (the RSA key-generation case).
///
/// When `coprime_to` is given, candidates with `gcd(p - 1, e) != 1` are
/// rejected so that `e` is usable as an RSA public exponent.
pub fn gen_prime<R: Rng + ?Sized>(
    rng: &mut R,
    bits: usize,
    two_top_bits: bool,
    coprime_to: Option<&BigUint>,
) -> BigUint {
    assert!(bits >= 16, "refusing to generate toy primes below 16 bits");
    let rounds = mr_rounds_random(bits);
    loop {
        // One odd base per window; random_bits already forces the top bit,
        // and OR-ing in the second-top / low bits cannot carry, so the
        // base always has exactly `bits` bits.
        let mut base = BigUint::random_bits(rng, bits);
        if two_top_bits && !base.bit(bits - 2) {
            base = base.add(&BigUint::one().shl(bits - 2));
        }
        if base.is_even() {
            base = base.add(&BigUint::one());
        }
        let survives = sieve_window(&base, SIEVE_WINDOW);
        for (k, _) in survives.iter().enumerate().filter(|(_, &ok)| ok) {
            let candidate = base.add(&BigUint::from_u64(2 * k as u64));
            if candidate.bit_len() != bits {
                break; // window ran past 2^bits; redraw
            }
            if let Some(e) = coprime_to {
                if !candidate.sub(&BigUint::one()).gcd(e).is_one() {
                    continue;
                }
            }
            if miller_rabin(&candidate, rounds, rng) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn sieve_front_matches_known_primes() {
        let primes = small_primes();
        assert_eq!(&primes[..10], &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(primes.iter().all(|&p| (p as usize) < SIEVE_BOUND));
        // The cache hands back the same allocation every time.
        assert!(std::ptr::eq(primes, small_primes()));
    }

    #[test]
    fn known_primes_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u128, 3, 5, 104729, 1_000_000_007, 0xffff_ffff_ffff_ffc5] {
            assert!(is_probable_prime(&big(p), &mut rng), "{p} should be prime");
        }
        // 2^127 - 1 (Mersenne).
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127, &mut rng));
    }

    #[test]
    fn known_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u128, 1, 4, 100, 561, 41041, 825265, 1_000_000_006] {
            assert!(!is_probable_prime(&big(c), &mut rng), "{c} is not prime");
        }
        // Carmichael number with large factors: 101*151*251.
        assert!(!is_probable_prime(&big(101 * 151 * 251), &mut rng));
        // Product of two 64-bit primes.
        let p = big(0xffff_ffff_ffff_ffc5);
        assert!(!is_probable_prime(&p.mul(&p), &mut rng));
    }

    #[test]
    fn generated_prime_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = gen_prime(&mut rng, 64, true, None);
        assert_eq!(p.bit_len(), 64);
        assert!(p.bit(62), "second-highest bit must be set");
        assert!(is_probable_prime(&p, &mut rng));
    }

    #[test]
    fn coprime_constraint_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = big(3);
        for _ in 0..5 {
            let p = gen_prime(&mut rng, 48, false, Some(&e));
            assert!(p.sub(&BigUint::one()).gcd(&e).is_one());
        }
    }

    #[test]
    fn rsa_sized_prime_generation_terminates() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = gen_prime(&mut rng, 256, true, Some(&big(3)));
        assert_eq!(p.bit_len(), 256);
        assert!(is_probable_prime(&p, &mut rng));
    }

    #[test]
    fn gen_prime_is_deterministic_per_seed() {
        let a = gen_prime(&mut StdRng::seed_from_u64(42), 128, true, None);
        let b = gen_prime(&mut StdRng::seed_from_u64(42), 128, true, None);
        assert_eq!(a, b);
    }

    #[test]
    fn reduced_rounds_table_is_sane() {
        // Monotone non-increasing in bits, never below the HAC floor,
        // and worst-case for sizes the table doesn't cover.
        assert_eq!(mr_rounds_random(64), MR_ROUNDS);
        let mut last = MR_ROUNDS;
        for bits in (100..=600).step_by(10) {
            let r = mr_rounds_random(bits);
            assert!(r <= last, "rounds must not grow with bits");
            assert!(r >= 6, "never below the 2^-80 table floor");
            last = r;
        }
    }

    #[test]
    fn sieve_window_rejects_known_composite_offsets() {
        // base = 2^20 + 1 is odd and > SIEVE_BOUND; check a handful of
        // offsets against naive divisibility.
        let base = BigUint::one().shl(20).add(&BigUint::one());
        let survives = sieve_window(&base, 64);
        for (k, &ok) in survives.iter().enumerate() {
            let candidate = (1u64 << 20) + 1 + 2 * k as u64;
            let divisible = small_primes()
                .iter()
                .any(|&p| p != 2 && candidate.is_multiple_of(p));
            assert_eq!(ok, !divisible, "offset {k} (candidate {candidate})");
        }
    }

    proptest! {
        // Satellite: windowed-sieve survivors exactly equal naive
        // per-candidate trial division over the same window.
        #[test]
        fn prop_sieve_window_matches_trial_division(
            seed in any::<u64>(),
            bits in 14usize..200,
            count in 1usize..300,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut base = BigUint::random_bits(&mut rng, bits);
            if base.is_even() {
                base = base.add(&BigUint::one());
            }
            let survives = sieve_window(&base, count);
            for (k, &ok) in survives.iter().enumerate() {
                let candidate = base.add(&BigUint::from_u64(2 * k as u64));
                let divisible = small_primes()
                    .iter()
                    .any(|&p| p != 2 && candidate.rem_u64(p) == 0);
                prop_assert_eq!(ok, !divisible, "offset {}", k);
            }
        }
    }
}
