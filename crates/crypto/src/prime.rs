//! Prime generation for one-time RSA keys.
//!
//! The paper's sources mint a fresh 512-bit RSA key per connection (§3.2),
//! so prime generation must be fast for 256-bit primes: a small-prime sieve
//! filters candidates before Miller–Rabin.

use crate::biguint::BigUint;
use rand::Rng;

/// Primes below this bound are used for trial division of candidates.
const SIEVE_BOUND: usize = 8192;

/// Number of Miller–Rabin rounds. 32 random bases push the error
/// probability below 2^-64 for the sizes we generate.
const MR_ROUNDS: usize = 32;

/// Returns all primes below [`SIEVE_BOUND`] (Eratosthenes).
pub fn small_primes() -> Vec<u64> {
    let mut is_comp = vec![false; SIEVE_BOUND];
    let mut primes = Vec::new();
    for i in 2..SIEVE_BOUND {
        if !is_comp[i] {
            primes.push(i as u64);
            let mut j = i * i;
            while j < SIEVE_BOUND {
                is_comp[j] = true;
                j += i;
            }
        }
    }
    primes
}

/// Miller–Rabin probabilistic primality test with random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n == &two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Trial division by small primes.
    for &p in small_primes().iter() {
        let bp = BigUint::from_u64(p);
        if n == &bp {
            return true;
        }
        if n.rem(&bp).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let mont = crate::modexp::Montgomery::new(n);
    'witness: for _ in 0..MR_ROUNDS {
        // Base in [2, n-2].
        let a = loop {
            let a = BigUint::random_below(rng, &n_minus_1);
            if !a.is_zero() && !a.is_one() {
                break a;
            }
        };
        let mut x = mont.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mont.mul_mod(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
///
/// When `two_top_bits` is set, the two most significant bits are forced to
/// one so that the product of two such primes always has full `2*bits`
/// length (the RSA key-generation case).
///
/// When `coprime_to` is given, candidates with `gcd(p - 1, e) != 1` are
/// rejected so that `e` is usable as an RSA public exponent.
pub fn gen_prime<R: Rng + ?Sized>(
    rng: &mut R,
    bits: usize,
    two_top_bits: bool,
    coprime_to: Option<&BigUint>,
) -> BigUint {
    assert!(bits >= 16, "refusing to generate toy primes below 16 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if two_top_bits && bits >= 2 {
            candidate = candidate.add(&BigUint::one().shl(bits - 2));
            // Adding the bit may carry; re-mask by regenerating on overflow.
            if candidate.bit_len() != bits {
                continue;
            }
        }
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bit_len() != bits {
                continue;
            }
        }
        if let Some(e) = coprime_to {
            let pm1 = candidate.sub(&BigUint::one());
            if !pm1.gcd(e).is_one() {
                continue;
            }
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn sieve_front_matches_known_primes() {
        let primes = small_primes();
        assert_eq!(&primes[..10], &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(primes.iter().all(|&p| (p as usize) < SIEVE_BOUND));
    }

    #[test]
    fn known_primes_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u128, 3, 5, 104729, 1_000_000_007, 0xffff_ffff_ffff_ffc5] {
            assert!(is_probable_prime(&big(p), &mut rng), "{p} should be prime");
        }
        // 2^127 - 1 (Mersenne).
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127, &mut rng));
    }

    #[test]
    fn known_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u128, 1, 4, 100, 561, 41041, 825265, 1_000_000_006] {
            assert!(!is_probable_prime(&big(c), &mut rng), "{c} is not prime");
        }
        // Carmichael number with large factors: 101*151*251.
        assert!(!is_probable_prime(&big(101 * 151 * 251), &mut rng));
        // Product of two 64-bit primes.
        let p = big(0xffff_ffff_ffff_ffc5);
        assert!(!is_probable_prime(&p.mul(&p), &mut rng));
    }

    #[test]
    fn generated_prime_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = gen_prime(&mut rng, 64, true, None);
        assert_eq!(p.bit_len(), 64);
        assert!(p.bit(62), "second-highest bit must be set");
        assert!(is_probable_prime(&p, &mut rng));
    }

    #[test]
    fn coprime_constraint_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = big(3);
        for _ in 0..5 {
            let p = gen_prime(&mut rng, 48, false, Some(&e));
            assert!(p.sub(&BigUint::one()).gcd(&e).is_one());
        }
    }

    #[test]
    fn rsa_sized_prime_generation_terminates() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = gen_prime(&mut rng, 256, true, Some(&big(3)));
        assert_eq!(p.bit_len(), 256);
        assert!(is_probable_prime(&p, &mut rng));
    }
}
